"""End-to-end tests for the ``explore`` CLI subcommand."""

import pytest

from repro.cli import main


class TestExploreSchedule:
    def test_matches_serial_map_answer(self, capsys, tmp_path):
        rc = main([
            "explore", "-a", "matmul", "--mu", "4", "-s", "1,1,-1",
            "--jobs", "2", "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optimal Pi     : [1, 2, 3]" in out
        assert "total time     : 25" in out
        assert "shards" in out

    def test_warm_replay_reports_cache_hit(self, capsys, tmp_path):
        args = [
            "explore", "-a", "matmul", "--mu", "4", "-s", "1,1,-1",
            "--jobs", "1", "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1 hits / 0 misses" in out

    def test_no_cache_flag(self, capsys, tmp_path):
        rc = main([
            "explore", "-a", "matmul", "--mu", "3", "-s", "1,1,-1",
            "--jobs", "1", "--cache-dir", str(tmp_path), "--no-cache",
        ])
        assert rc == 0
        assert len(list(tmp_path.glob("*.json"))) == 0

    def test_pruning_on_by_default_and_reported(self, capsys, tmp_path):
        rc = main([
            "explore", "-a", "matmul", "--mu", "6", "-s", "1,1,-1",
            "--jobs", "1", "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pruning        :" in out
        assert "orbit member(s) rehydrated" in out

    def test_no_symmetry_no_ring_bound_same_answer(self, capsys, tmp_path):
        base_args = [
            "explore", "-a", "matmul", "--mu", "6", "-s", "1,1,-1",
            "--jobs", "1", "--no-cache", "--cache-dir", str(tmp_path),
        ]
        assert main(base_args) == 0
        pruned_out = capsys.readouterr().out
        assert main(base_args + ["--no-symmetry", "--no-ring-bound"]) == 0
        plain_out = capsys.readouterr().out
        assert "pruning        :" not in plain_out

        def answer(text):
            return [
                line for line in text.splitlines()
                if line.startswith(("optimal Pi", "total time"))
            ]

        assert answer(pruned_out) == answer(plain_out)


class TestExploreSpaceAndJoint:
    def test_space_mode(self, capsys, tmp_path):
        rc = main([
            "explore", "-a", "matmul", "--mu", "3", "-p", "1,3,1",
            "--jobs", "1", "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "space search (Problem 6.1)" in out
        assert "#1: S =" in out

    def test_joint_mode(self, capsys, tmp_path):
        rc = main([
            "explore", "-a", "matmul", "--mu", "3",
            "--jobs", "1", "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "joint search (Problem 6.2)" in out
        assert "Pi =" in out

    def test_space_and_schedule_together_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "explore", "-a", "matmul", "--mu", "3",
                "-s", "1,1,-1", "-p", "1,3,1",
                "--cache-dir", str(tmp_path),
            ])


class TestExploreCacheMaintenance:
    def _populate(self, tmp_path):
        assert main([
            "explore", "-a", "matmul", "--mu", "3", "-s", "1,1,-1",
            "--jobs", "1", "--cache-dir", str(tmp_path),
        ]) == 0

    def test_reports_counters_and_disk_state(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        rc = main(["explore", "cache", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"cache dir      : {tmp_path}" in out
        assert "entries        : 1" in out
        assert "corrupt files  : 0" in out
        assert "hits / " in out and "misses" in out

    def test_sweep_removes_temp_files(self, capsys, tmp_path):
        self._populate(tmp_path)
        (tmp_path / ".tmp-leak.json").write_text("{}")
        capsys.readouterr()
        rc = main(["explore", "cache", "--cache-dir", str(tmp_path),
                   "--sweep"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "swept          : 1 temp file(s)" in out
        assert "temp files     : 0" in out
        assert not (tmp_path / ".tmp-leak.json").exists()

    def test_clear_empties_the_cache(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        rc = main(["explore", "cache", "--cache-dir", str(tmp_path),
                   "--clear"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cleared        : 1 entry" in out
        assert "entries        : 0" in out
        assert not list(tmp_path.glob("*.json"))

    def test_sweep_without_cache_subcommand_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="cache"):
            main(["explore", "-a", "matmul", "--mu", "3", "-s", "1,1,-1",
                  "--cache-dir", str(tmp_path), "--sweep"])
