"""Unit tests for the deterministic sharding primitives."""

import pytest

from repro.dse.partition import (
    ShardAutotuner,
    effective_shards,
    ring_bounds,
    ring_ranges,
    round_robin,
)


class TestRoundRobin:
    def test_deals_in_stride(self):
        assert round_robin([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_single_shard_is_identity(self):
        items = list(range(7))
        assert round_robin(items, 1) == [items]

    def test_more_shards_than_items_drops_empties(self):
        assert round_robin([1, 2], 5) == [[1], [2]]

    def test_empty_input(self):
        assert round_robin([], 3) == []

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            round_robin([1], 0)

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7, 20])
    def test_interleave_reconstructs_input_order(self, shards):
        items = list(range(17))
        dealt = round_robin(items, shards)
        rebuilt = []
        width = max(len(s) for s in dealt)
        for pos in range(width):
            for shard in dealt:
                if pos < len(shard):
                    rebuilt.append(shard[pos])
        assert rebuilt == items

    def test_no_item_lost_or_duplicated(self):
        items = list(range(23))
        dealt = round_robin(items, 4)
        assert sorted(x for shard in dealt for x in shard) == items


class TestEffectiveShards:
    def test_caps_at_item_count(self):
        assert effective_shards(3, 8) == 3

    def test_caps_at_jobs(self):
        assert effective_shards(100, 4) == 4

    def test_at_least_one(self):
        assert effective_shards(0, 4) == 1

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            effective_shards(5, 0)


class TestRingBounds:
    def test_mirrors_serial_loop(self):
        # initial_bound=12, alpha=4, max_bound=21:
        # serial: x_prev=-1, x=12 -> ring [0,12]; [13,16]; [17,20]; [21,21]
        assert list(ring_bounds(12, 4, 21)) == [
            (0, 12), (13, 16), (17, 20), (21, 21),
        ]

    def test_clamps_first_ring_to_max_bound(self):
        assert list(ring_bounds(50, 5, 10)) == [(0, 10)]

    def test_windows_partition_the_range(self):
        windows = list(ring_bounds(7, 3, 40))
        assert windows[0][0] == 0
        assert windows[-1][1] == 40
        for (_, hi), (lo2, _) in zip(windows, windows[1:]):
            assert lo2 == hi + 1

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            next(ring_bounds(5, 0, 10))


class TestRingRanges:
    @pytest.mark.parametrize("total,shards", [
        (10, 3), (7, 7), (1, 4), (23, 4), (100, 16),
    ])
    def test_contiguous_cover_in_order(self, total, shards):
        ranges = ring_ranges(total, shards)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == total
        for (_, stop), (start2, _) in zip(ranges, ranges[1:]):
            assert start2 == stop
        assert [i for a, b in ranges for i in range(a, b)] == list(range(total))

    def test_balanced_within_one(self):
        sizes = [b - a for a, b in ring_ranges(23, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_never_produces_empty_ranges(self):
        assert len(ring_ranges(2, 5)) == 2
        assert all(b > a for a, b in ring_ranges(2, 5))

    def test_empty_total(self):
        assert ring_ranges(0, 4) == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ring_ranges(5, 0)
        with pytest.raises(ValueError):
            ring_ranges(-1, 2)


class TestShardAutotuner:
    def test_first_ring_is_a_serial_probe(self):
        tuner = ShardAutotuner(jobs=8)
        assert tuner.shards_for(1000) == 1

    def test_cheap_rings_stay_serial(self):
        tuner = ShardAutotuner(jobs=8)
        tuner.observe(1000, 0.001)  # 1 us per candidate
        assert tuner.shards_for(2000) == 1  # predicted 2 ms << fan-out bar

    def test_expensive_rings_fan_out(self):
        tuner = ShardAutotuner(jobs=8)
        tuner.observe(100, 1.0)  # 10 ms per candidate
        assert tuner.shards_for(200) == 8  # predicted 2 s >> target/shard

    def test_fanout_sized_to_target_not_always_max(self):
        tuner = ShardAutotuner(jobs=16)
        tuner.observe(1000, 0.1)  # 0.1 ms per candidate
        # Predicted 0.2 s: above the fan-out bar, but only worth
        # ceil(0.2 / 0.05) = 4 shards, not all 16 workers.
        assert tuner.shards_for(2000) == 4

    def test_counts_only_decisions_that_differ_from_baseline(self):
        tuner = ShardAutotuner(jobs=4)
        tuner.shards_for(100)  # probe: 1 != baseline 4
        assert tuner.autotuned == 1
        tuner.observe(100, 10.0)
        tuner.shards_for(100)  # expensive: 4 == baseline 4
        assert tuner.autotuned == 1

    def test_jobs_1_is_always_baseline(self):
        tuner = ShardAutotuner(jobs=1)
        tuner.shards_for(50)
        tuner.observe(50, 5.0)
        tuner.shards_for(50)
        assert tuner.autotuned == 0

    def test_deterministic_replay(self):
        # Identical observation sequences yield identical decisions —
        # the property checkpoint resume depends on.
        a = ShardAutotuner(jobs=4)
        b = ShardAutotuner(jobs=4)
        decisions_a, decisions_b = [], []
        for total, secs in [(100, 0.5), (200, 0.9), (50, 0.01), (400, 2.0)]:
            decisions_a.append(a.shards_for(total))
            a.observe(total, secs)
            decisions_b.append(b.shards_for(total))
            b.observe(total, secs)
        assert decisions_a == decisions_b

    def test_rejects_negative_observations(self):
        tuner = ShardAutotuner(jobs=2)
        with pytest.raises(ValueError):
            tuner.observe(-1, 0.0)
        with pytest.raises(ValueError):
            tuner.observe(1, -0.5)

    def test_representatives_drive_the_cost_prediction(self):
        # 200 enumerated candidates of which only 5 are orbit reps:
        # the predicted cost must use 5, keeping the ring serial even
        # though 200 raw candidates would clear the fan-out bar.
        tuner = ShardAutotuner(jobs=8)
        tuner.observe(100, 1.0)  # 10 ms per representative
        assert tuner.shards_for(200) == 8
        assert tuner.shards_for(200, representatives=5) == 1

    def test_representatives_none_matches_plain_call(self):
        a = ShardAutotuner(jobs=8)
        b = ShardAutotuner(jobs=8)
        a.observe(100, 1.0)
        b.observe(100, 1.0)
        assert a.shards_for(300) == b.shards_for(300, representatives=None)

    def test_shard_cap_stays_at_enumerated_count(self):
        # Fan-out is capped by how many candidates can be dealt, not by
        # how many representatives exist: ranges cover every candidate.
        tuner = ShardAutotuner(jobs=8)
        tuner.observe(10, 10.0)  # 1 s per representative: always fan out
        assert tuner.shards_for(3, representatives=3) == 3
