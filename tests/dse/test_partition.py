"""Unit tests for the deterministic sharding primitives."""

import pytest

from repro.dse.partition import effective_shards, ring_bounds, round_robin


class TestRoundRobin:
    def test_deals_in_stride(self):
        assert round_robin([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_single_shard_is_identity(self):
        items = list(range(7))
        assert round_robin(items, 1) == [items]

    def test_more_shards_than_items_drops_empties(self):
        assert round_robin([1, 2], 5) == [[1], [2]]

    def test_empty_input(self):
        assert round_robin([], 3) == []

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            round_robin([1], 0)

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7, 20])
    def test_interleave_reconstructs_input_order(self, shards):
        items = list(range(17))
        dealt = round_robin(items, shards)
        rebuilt = []
        width = max(len(s) for s in dealt)
        for pos in range(width):
            for shard in dealt:
                if pos < len(shard):
                    rebuilt.append(shard[pos])
        assert rebuilt == items

    def test_no_item_lost_or_duplicated(self):
        items = list(range(23))
        dealt = round_robin(items, 4)
        assert sorted(x for shard in dealt for x in shard) == items


class TestEffectiveShards:
    def test_caps_at_item_count(self):
        assert effective_shards(3, 8) == 3

    def test_caps_at_jobs(self):
        assert effective_shards(100, 4) == 4

    def test_at_least_one(self):
        assert effective_shards(0, 4) == 1

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            effective_shards(5, 0)


class TestRingBounds:
    def test_mirrors_serial_loop(self):
        # initial_bound=12, alpha=4, max_bound=21:
        # serial: x_prev=-1, x=12 -> ring [0,12]; [13,16]; [17,20]; [21,21]
        assert list(ring_bounds(12, 4, 21)) == [
            (0, 12), (13, 16), (17, 20), (21, 21),
        ]

    def test_clamps_first_ring_to_max_bound(self):
        assert list(ring_bounds(50, 5, 10)) == [(0, 10)]

    def test_windows_partition_the_range(self):
        windows = list(ring_bounds(7, 3, 40))
        assert windows[0][0] == 0
        assert windows[-1][1] == 40
        for (_, hi), (lo2, _) in zip(windows, windows[1:]):
            assert lo2 == hi + 1

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            next(ring_bounds(5, 0, 10))
