"""Calibrated autotuner thresholds and their journal round-trip.

The `ShardAutotuner` no longer hard-codes the 0.05s/0.1s thresholds
tuned on one reference machine: the executor measures this machine once
(`calibration_probe`), derives the thresholds (`thresholds_from_probe`)
and journals the measurement, so autotune decisions stay a pure
function of recorded history — a resumed run replays the journaled
probe and re-derives identical shard ranges.
"""

import json

import pytest

from repro.dse import executor as executor_mod
from repro.dse.executor import explore_schedule
from repro.dse.partition import (
    DEFAULT_MIN_FANOUT_SECONDS,
    DEFAULT_TARGET_SHARD_SECONDS,
    REFERENCE_PROBE_SECONDS,
    ShardAutotuner,
    calibration_probe,
    thresholds_from_probe,
)
from repro.model import matrix_multiplication

SPACE = [[1, 1, -1]]


class TestCalibrationProbe:
    def test_returns_positive_seconds(self):
        assert calibration_probe() > 0

    def test_tiny_workload_is_floored_not_zero(self):
        assert calibration_probe(iterations=1) > 0

    def test_rejects_nonpositive_iterations(self):
        with pytest.raises(ValueError):
            calibration_probe(iterations=0)


class TestThresholdsFromProbe:
    def test_reference_probe_reproduces_the_defaults(self):
        target, fanout = thresholds_from_probe(REFERENCE_PROBE_SECONDS)
        assert target == DEFAULT_TARGET_SHARD_SECONDS
        assert fanout == DEFAULT_MIN_FANOUT_SECONDS

    def test_slower_machine_raises_both_thresholds(self):
        target, fanout = thresholds_from_probe(REFERENCE_PROBE_SECONDS * 4)
        assert target == DEFAULT_TARGET_SHARD_SECONDS * 4
        assert fanout == DEFAULT_MIN_FANOUT_SECONDS * 4

    def test_scale_is_clamped_both_ways(self):
        slow_t, slow_f = thresholds_from_probe(REFERENCE_PROBE_SECONDS * 1000)
        assert slow_t == DEFAULT_TARGET_SHARD_SECONDS * 8.0
        assert slow_f == DEFAULT_MIN_FANOUT_SECONDS * 8.0
        fast_t, fast_f = thresholds_from_probe(REFERENCE_PROBE_SECONDS / 1000)
        assert fast_t == DEFAULT_TARGET_SHARD_SECONDS * 0.25
        assert fast_f == DEFAULT_MIN_FANOUT_SECONDS * 0.25

    def test_rejects_nonpositive_probe(self):
        with pytest.raises(ValueError):
            thresholds_from_probe(0.0)

    def test_pure_function(self):
        probe = 0.037
        assert thresholds_from_probe(probe) == thresholds_from_probe(probe)


class TestAutotunerCalibration:
    def test_calibration_derives_thresholds(self):
        tuner = ShardAutotuner(jobs=4, calibration=REFERENCE_PROBE_SECONDS * 2)
        assert tuner.target_shard_seconds == DEFAULT_TARGET_SHARD_SECONDS * 2
        assert tuner.min_fanout_seconds == DEFAULT_MIN_FANOUT_SECONDS * 2

    def test_no_calibration_keeps_reference_defaults(self):
        tuner = ShardAutotuner(jobs=4)
        assert tuner.target_shard_seconds == DEFAULT_TARGET_SHARD_SECONDS
        assert tuner.min_fanout_seconds == DEFAULT_MIN_FANOUT_SECONDS

    def test_explicit_thresholds_beat_calibration(self):
        tuner = ShardAutotuner(
            jobs=4,
            target_shard_seconds=1.0,
            min_fanout_seconds=2.0,
            calibration=REFERENCE_PROBE_SECONDS * 8,
        )
        assert tuner.target_shard_seconds == 1.0
        assert tuner.min_fanout_seconds == 2.0

    def test_same_calibration_same_decisions(self):
        a = ShardAutotuner(jobs=4, calibration=0.02)
        b = ShardAutotuner(jobs=4, calibration=0.02)
        decisions = []
        for tuner in (a, b):
            seq = []
            for total, secs in [(100, 0.5), (400, 2.0), (50, 0.001)]:
                seq.append(tuner.shards_for(total))
                tuner.observe(total, secs)
            decisions.append(seq)
        assert decisions[0] == decisions[1]


def calibration_records(path):
    records = []
    with open(path) as fh:
        for line in fh:
            rec = json.loads(line).get("rec", {})
            if rec.get("kind") == "shard" and "seconds" in rec.get("out", {}):
                records.append(rec)
    return records


class TestJournaledCalibration:
    def test_checkpointed_run_journals_the_probe_once(self, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        explore_schedule(
            matrix_multiplication(3), SPACE, jobs=1, checkpoint=ckpt
        )
        records = calibration_records(ckpt)
        assert len(records) == 1
        assert records[0]["out"]["seconds"] > 0

    def test_resume_replays_the_journaled_probe(self, tmp_path, monkeypatch):
        from repro.dse.checkpoint import BudgetExceeded, RunBudget

        ckpt = tmp_path / "run.ckpt"
        algo = matrix_multiplication(3)
        # Interrupt after one ring so the journal holds the probe but no
        # final result — the resume then actually re-enters the ring loop.
        with pytest.raises(BudgetExceeded):
            explore_schedule(
                algo, SPACE, jobs=1, checkpoint=ckpt,
                budget=RunBudget(max_shards=1),
            )
        recorded = calibration_records(ckpt)[0]["out"]["seconds"]
        uninterrupted = explore_schedule(algo, SPACE, jobs=1)

        # A resumed run must *use* the journaled measurement, not
        # remeasure: poison the probe to prove it is never called.
        def boom():  # pragma: no cover - would fail the test if reached
            raise AssertionError("resume must not re-run the probe")

        monkeypatch.setattr(executor_mod, "calibration_probe", boom)
        monkeypatch.setattr(executor_mod, "_process_calibration", None)
        seen = {}
        orig = ShardAutotuner.__init__

        def spy(self, *args, **kwargs):
            seen["calibration"] = kwargs.get("calibration")
            return orig(self, *args, **kwargs)

        monkeypatch.setattr(ShardAutotuner, "__init__", spy)
        resumed = explore_schedule(
            algo, SPACE, jobs=1, checkpoint=ckpt, resume=True
        )
        assert resumed == uninterrupted
        assert seen["calibration"] == recorded

    def test_journal_keeps_one_probe_across_resumes(self, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        algo = matrix_multiplication(3)
        explore_schedule(algo, SPACE, jobs=1, checkpoint=ckpt)
        explore_schedule(algo, SPACE, jobs=1, checkpoint=ckpt, resume=True)
        assert len(calibration_records(ckpt)) == 1

    def test_uncheckpointed_runs_probe_once_per_process(self, monkeypatch):
        calls = {"n": 0}

        def counting_probe():
            calls["n"] += 1
            return 0.01

        monkeypatch.setattr(executor_mod, "calibration_probe", counting_probe)
        monkeypatch.setattr(executor_mod, "_process_calibration", None)
        algo = matrix_multiplication(2)
        explore_schedule(algo, SPACE, jobs=1)
        explore_schedule(algo, SPACE, jobs=1)
        assert calls["n"] == 1
