"""Unit tests for the uniform SearchStats telemetry."""

from repro.dse.progress import SearchStats, format_stats


class TestEqualitySemantics:
    def test_telemetry_excluded_from_equality(self):
        serial = SearchStats(
            candidates_enumerated=100, candidates_checked=10,
            conflicts_rejected=9, rings_expanded=2,
        )
        parallel = SearchStats(
            candidates_enumerated=100, candidates_checked=10,
            conflicts_rejected=9, rings_expanded=2,
            shards=4, cache_hits=1, wall_time=1.5,
            shard_wall_times=(0.3, 0.4, 0.4, 0.4),
        )
        assert serial == parallel

    def test_deterministic_counters_participate(self):
        assert SearchStats(candidates_checked=1) != SearchStats(
            candidates_checked=2
        )


class TestAccumulation:
    def test_add_folds_counters_and_wall_times(self):
        a = SearchStats(candidates_enumerated=3, candidates_pruned=1,
                        shard_wall_times=(0.1,))
        b = SearchStats(candidates_enumerated=4, conflicts_rejected=2,
                        shard_wall_times=(0.2,))
        a.add(b)
        assert a.candidates_enumerated == 7
        assert a.candidates_pruned == 1
        assert a.conflicts_rejected == 2
        assert a.shard_wall_times == (0.1, 0.2)

    def test_cache_hit_rate(self):
        assert SearchStats().cache_hit_rate == 0.0
        assert SearchStats(cache_hits=3, cache_misses=1).cache_hit_rate == 0.75


class TestSerialization:
    def test_round_trip_full(self):
        stats = SearchStats(
            candidates_enumerated=5, candidates_checked=3,
            conflicts_rejected=1, routing_rejected=1, rings_expanded=2,
            shards=2, cache_hits=1, cache_misses=1, wall_time=0.5,
            shard_wall_times=(0.2, 0.3),
        )
        rebuilt = SearchStats.from_dict(stats.to_dict())
        assert rebuilt == stats  # deterministic counters
        assert rebuilt.shards == 2 and rebuilt.shard_wall_times == (0.2, 0.3)

    def test_counter_dict_round_trip_zeroes_telemetry(self):
        stats = SearchStats(candidates_checked=7, shards=4, wall_time=9.0)
        rebuilt = SearchStats.from_dict(stats.counter_dict())
        assert rebuilt == stats
        assert rebuilt.shards == 1 and rebuilt.wall_time == 0.0

    def test_from_dict_ignores_unknown_keys(self):
        assert SearchStats.from_dict(
            {"candidates_checked": 2, "bogus": 1}
        ) == SearchStats(candidates_checked=2)

    def test_with_telemetry_keeps_counters(self):
        stats = SearchStats(candidates_checked=4)
        updated = stats.with_telemetry(shards=8, wall_time=1.0, cache_hits=2)
        assert updated == stats
        assert updated.shards == 8 and updated.cache_hits == 2


class TestFormatting:
    def test_format_mentions_core_counters(self):
        text = format_stats(
            SearchStats(candidates_enumerated=10, candidates_checked=4,
                        conflicts_rejected=3, rings_expanded=1,
                        cache_hits=1, shard_wall_times=(0.1, 0.2))
        )
        assert "enumerated" in text and "10" in text
        assert "rings expanded" in text
        assert "cache" in text
        assert "shard times" in text
