"""Unit tests for the persistent result cache and its canonical keys."""

import json

import pytest

from repro.dse.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    canonical_key,
    default_cache_dir,
)


class TestCanonicalKey:
    def test_key_order_does_not_matter(self):
        a = canonical_key({"mu": [4, 4, 4], "space": [[1, 1, -1]]})
        b = canonical_key({"space": [[1, 1, -1]], "mu": [4, 4, 4]})
        assert a == b

    def test_tuples_and_lists_coincide(self):
        assert canonical_key({"s": ((1, 2), (3, 4))}) == canonical_key(
            {"s": [[1, 2], [3, 4]]}
        )

    def test_any_component_change_changes_the_key(self):
        base = {
            "task": "procedure-5.1",
            "mu": [4, 4, 4],
            "dependence": [[1, 0, 0], [0, 1, 0], [0, 0, 1]],
            "space": [[1, 1, -1]],
            "method": "auto",
            "alpha": 4,
            "initial_bound": 12,
            "max_bound": 60,
        }
        reference = canonical_key(base)
        perturbed = [
            {**base, "mu": [4, 4, 5]},
            {**base, "dependence": [[1, 0, 0], [0, 1, 0], [0, 0, 2]]},
            {**base, "space": [[1, 1, 1]]},
            {**base, "method": "exact"},
            {**base, "alpha": 5},
            {**base, "initial_bound": 13},
            {**base, "max_bound": 61},
            {**base, "task": "joint-optimal"},
        ]
        keys = {canonical_key(p) for p in perturbed}
        assert reference not in keys
        assert len(keys) == len(perturbed)

    def test_unserializable_component_is_rejected(self):
        with pytest.raises(TypeError):
            canonical_key({"cb": object()})


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 1})
        assert cache.get(key) is None
        cache.put(key, {"found": True, "pi": [1, 2, 3]})
        assert cache.get(key) == {"found": True, "pi": [1, 2, 3]}
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_schema_bump_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 2})
        cache.put(key, {"found": False})
        path = tmp_path / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 3})
        cache.put(key, {"x": 1})
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        key = canonical_key({"q": 4})
        cache.put(key, {"x": 1})
        assert cache.get(key) is None
        assert len(cache) == 0
        assert cache.misses == 1 and cache.hits == 0

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(canonical_key({"q": i}), {"i": i})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_default_dir_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_CACHE_DIR", str(tmp_path / "envdir"))
        assert default_cache_dir() == tmp_path / "envdir"
        monkeypatch.delenv("REPRO_DSE_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-dse"


class TestMalformedEntries:
    """Malformed files are misses that get quarantined, never crashes."""

    def test_entry_without_value_is_miss_and_quarantined(self, tmp_path):
        # Regression: a truncated/hand-edited entry that still passes the
        # isinstance+schema guard used to raise KeyError on entry["value"].
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 10})
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"schema": CACHE_SCHEMA_VERSION})
        )
        assert cache.get(key) is None
        assert cache.misses == 1 and cache.hits == 0
        assert cache.quarantined == 1
        assert not (tmp_path / f"{key}.json").exists()
        assert (tmp_path / f"{key}.json.corrupt").exists()

    def test_non_object_document_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 11})
        (tmp_path / f"{key}.json").write_text("[1, 2, 3]")
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_unparsable_json_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 12})
        (tmp_path / f"{key}.json").write_text("{truncated")
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert len(cache) == 0  # the quarantined file is no longer an entry

    def test_schema_skew_is_a_plain_miss_not_damage(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 13})
        path = tmp_path / f"{key}.json"
        path.write_text(
            json.dumps({"schema": CACHE_SCHEMA_VERSION + 1, "value": {"x": 1}})
        )
        assert cache.get(key) is None
        assert cache.quarantined == 0
        assert path.exists()

    def test_quarantined_key_can_be_repopulated(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 14})
        (tmp_path / f"{key}.json").write_text("garbage")
        assert cache.get(key) is None
        cache.put(key, {"fresh": True})
        assert cache.get(key) == {"fresh": True}


class TestContentChecksum:
    """v3 entries carry a checksum; bit-rot that parses is still caught."""

    def test_entries_are_written_with_checksum(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 30})
        cache.put(key, {"found": True, "pi": [1, 2, 3]})
        entry = json.loads((tmp_path / f"{key}.json").read_text())
        assert entry["schema"] == CACHE_SCHEMA_VERSION
        assert isinstance(entry["crc"], str) and len(entry["crc"]) == 64

    def test_tampered_value_is_quarantined(self, tmp_path):
        # The dangerous case: valid JSON, right schema, wrong content.
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 31})
        cache.put(key, {"found": True, "pi": [1, 2, 3]})
        path = tmp_path / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["value"]["pi"] = [9, 9, 9]
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert (tmp_path / f"{key}.json.corrupt").exists()

    def test_missing_crc_on_v3_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 32})
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"schema": CACHE_SCHEMA_VERSION, "value": {"x": 1}})
        )
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_v2_entry_without_checksum_still_reads(self, tmp_path):
        # Read compatibility: v2 predates the checksum and stays valid.
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 33})
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"schema": 2, "value": {"found": False, "pi": None}})
        )
        assert cache.get(key) == {"found": False, "pi": None}
        assert cache.hits == 1 and cache.quarantined == 0

    def test_checksum_survives_key_reordering(self, tmp_path):
        # sort_keys canonicalization: rewriting the file with different
        # key order (e.g. a pretty-printer) must not look like damage.
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 34})
        cache.put(key, {"a": 1, "b": [2, 3]})
        path = tmp_path / f"{key}.json"
        entry = json.loads(path.read_text())
        reordered = {"value": {"b": entry["value"]["b"], "a": 1},
                     "crc": entry["crc"], "schema": entry["schema"]}
        path.write_text(json.dumps(reordered, indent=2))
        assert cache.get(key) == {"a": 1, "b": [2, 3]}
        assert cache.quarantined == 0


class TestAutoSweep:
    """Opening a cache reclaims temp files leaked by crashed writers."""

    def test_open_sweeps_stale_temp_files(self, tmp_path):
        import os as _os
        import time as _time

        old = tmp_path / ".tmp-dead.json"
        old.write_text("{}")
        stale = _time.time() - 7200
        _os.utime(old, (stale, stale))
        cache = ResultCache(tmp_path)
        assert cache.swept == 1
        assert not old.exists()

    def test_open_leaves_fresh_temp_files(self, tmp_path):
        young = tmp_path / ".tmp-live.json"
        young.write_text("{}")
        cache = ResultCache(tmp_path)
        assert cache.swept == 0
        assert young.exists()

    def test_disabled_cache_does_not_sweep(self, tmp_path):
        import os as _os
        import time as _time

        old = tmp_path / ".tmp-dead.json"
        old.write_text("{}")
        stale = _time.time() - 7200
        _os.utime(old, (stale, stale))
        cache = ResultCache(tmp_path, enabled=False)
        assert cache.swept == 0
        assert old.exists()


class TestTempFiles:
    """Crashed writers leak ``.tmp-*.json``; they must never read as entries."""

    def test_len_and_clear_ignore_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(canonical_key({"q": 20}), {"x": 1})
        (tmp_path / ".tmp-dead.json").write_text("{}")
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0
        # clear() also sweeps the leaked temp file.
        assert not list(tmp_path.glob(".tmp-*.json"))

    def test_clear_sweeps_quarantined_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 21})
        (tmp_path / f"{key}.json").write_text("garbage")
        cache.get(key)
        assert list(tmp_path.glob("*.json.corrupt"))
        assert cache.clear() == 0
        assert not list(tmp_path.glob("*.json.corrupt"))

    def test_sweep_temp_respects_age(self, tmp_path):
        import os as _os
        import time as _time

        cache = ResultCache(tmp_path)
        old = tmp_path / ".tmp-old.json"
        young = tmp_path / ".tmp-young.json"
        old.write_text("{}")
        young.write_text("{}")
        stale = _time.time() - 7200
        _os.utime(old, (stale, stale))
        assert cache.sweep_temp(max_age_seconds=3600) == 1
        assert not old.exists() and young.exists()

    def test_sweep_temp_on_missing_dir(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.sweep_temp() == 0


# -- concurrent access -------------------------------------------------------

_WRITER_SCRIPT = """
import sys, time
sys.path.insert(0, sys.argv[1])
from repro.dse.cache import ResultCache

cache = ResultCache(sys.argv[2])
key, tag, fill = sys.argv[3], sys.argv[4], int(sys.argv[5])
deadline = time.monotonic() + float(sys.argv[6])
writes = 0
while time.monotonic() < deadline:
    cache.put(key, {"who": tag, "seq": writes, "payload": [fill] * 200})
    writes += 1
print(writes)
"""

_READER_SCRIPT = """
import sys, time
sys.path.insert(0, sys.argv[1])
from repro.dse.cache import ResultCache

cache = ResultCache(sys.argv[2])
key = sys.argv[3]
deadline = time.monotonic() + float(sys.argv[4])
fills = {"a": 1, "b": 2}
reads = 0
while time.monotonic() < deadline:
    value = cache.get(key)
    if value is not None:
        assert value["who"] in fills, value
        assert value["payload"] == [fills[value["who"]]] * 200, "torn read"
    reads += 1
assert cache.quarantined == 0, f"reader quarantined {cache.quarantined}"
print(reads)
"""


class TestConcurrentAccess:
    """Two processes sharing one cache directory must never corrupt it.

    The atomic temp-file + ``os.replace`` protocol is the whole story:
    a reader sees either the old complete entry or the new complete
    entry, never a mixture, and therefore never quarantines a healthy
    file.  These tests drive real concurrent processes at it.
    """

    @staticmethod
    def _spawn(script, *argv):
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[2] / "src")
        return subprocess.Popen(
            [sys.executable, "-c", script, src, *map(str, argv)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )

    def _finish(self, proc):
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        return int(out.strip())

    def test_simultaneous_same_key_writers(self, tmp_path):
        key = canonical_key({"contended": True})
        w1 = self._spawn(_WRITER_SCRIPT, tmp_path, key, "a", 1, 1.0)
        w2 = self._spawn(_WRITER_SCRIPT, tmp_path, key, "b", 2, 1.0)
        writes = self._finish(w1) + self._finish(w2)
        assert writes > 2  # both actually overlapped in the window

        # Whoever won the last race, the surviving entry is complete
        # and internally consistent — and nothing got quarantined.
        cache = ResultCache(tmp_path)
        value = cache.get(key)
        assert value is not None
        assert value["payload"] == [{"a": 1, "b": 2}[value["who"]]] * 200
        assert cache.quarantined == 0
        assert not list(tmp_path.glob("*.json.corrupt"))

    def test_read_during_write(self, tmp_path):
        key = canonical_key({"streamed": True})
        writer = self._spawn(_WRITER_SCRIPT, tmp_path, key, "a", 1, 1.5)
        reader = self._spawn(_READER_SCRIPT, tmp_path, key, 1.5)
        writes = self._finish(writer)
        reads = self._finish(reader)
        assert writes > 0 and reads > 0
        assert not list(tmp_path.glob("*.json.corrupt"))

    def test_no_double_quarantine_of_corrupt_entry(self, tmp_path):
        # Two caches racing to quarantine the same damaged file must
        # produce exactly one .corrupt file and no crash.
        key = canonical_key({"damaged": True})
        (tmp_path / f"{key}.json").write_text("{not json")
        first = ResultCache(tmp_path)
        second = ResultCache(tmp_path)
        assert first.get(key) is None
        assert second.get(key) is None
        corpses = list(tmp_path.glob("*.json.corrupt"))
        assert len(corpses) == 1
        assert first.quarantined + second.quarantined == 1
