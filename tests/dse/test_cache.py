"""Unit tests for the persistent result cache and its canonical keys."""

import json

import pytest

from repro.dse.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    canonical_key,
    default_cache_dir,
)


class TestCanonicalKey:
    def test_key_order_does_not_matter(self):
        a = canonical_key({"mu": [4, 4, 4], "space": [[1, 1, -1]]})
        b = canonical_key({"space": [[1, 1, -1]], "mu": [4, 4, 4]})
        assert a == b

    def test_tuples_and_lists_coincide(self):
        assert canonical_key({"s": ((1, 2), (3, 4))}) == canonical_key(
            {"s": [[1, 2], [3, 4]]}
        )

    def test_any_component_change_changes_the_key(self):
        base = {
            "task": "procedure-5.1",
            "mu": [4, 4, 4],
            "dependence": [[1, 0, 0], [0, 1, 0], [0, 0, 1]],
            "space": [[1, 1, -1]],
            "method": "auto",
            "alpha": 4,
            "initial_bound": 12,
            "max_bound": 60,
        }
        reference = canonical_key(base)
        perturbed = [
            {**base, "mu": [4, 4, 5]},
            {**base, "dependence": [[1, 0, 0], [0, 1, 0], [0, 0, 2]]},
            {**base, "space": [[1, 1, 1]]},
            {**base, "method": "exact"},
            {**base, "alpha": 5},
            {**base, "initial_bound": 13},
            {**base, "max_bound": 61},
            {**base, "task": "joint-optimal"},
        ]
        keys = {canonical_key(p) for p in perturbed}
        assert reference not in keys
        assert len(keys) == len(perturbed)

    def test_unserializable_component_is_rejected(self):
        with pytest.raises(TypeError):
            canonical_key({"cb": object()})


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 1})
        assert cache.get(key) is None
        cache.put(key, {"found": True, "pi": [1, 2, 3]})
        assert cache.get(key) == {"found": True, "pi": [1, 2, 3]}
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_schema_bump_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 2})
        cache.put(key, {"found": False})
        path = tmp_path / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key({"q": 3})
        cache.put(key, {"x": 1})
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        key = canonical_key({"q": 4})
        cache.put(key, {"x": 1})
        assert cache.get(key) is None
        assert len(cache) == 0
        assert cache.misses == 1 and cache.hits == 0

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(canonical_key({"q": i}), {"i": i})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_default_dir_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_CACHE_DIR", str(tmp_path / "envdir"))
        assert default_cache_dir() == tmp_path / "envdir"
        monkeypatch.delenv("REPRO_DSE_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-dse"
