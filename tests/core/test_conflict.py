"""Unit tests for repro.core.conflict (Definition 2.3, Theorems 2.2, 3.1, 4.2)."""

import pytest

from repro.core import (
    MappingMatrix,
    analyze_conflicts,
    conflict_generators,
    conflict_margin,
    conflict_vector_corank1,
    conflict_vector_via_adjugate,
    find_conflict_witness,
    is_conflict_free_bruteforce,
    is_conflict_free_kernel_box,
    is_feasible_conflict_vector,
)
from repro.intlin import matvec, normalize_primitive
from repro.model import ConstantBoundedIndexSet


class TestFeasibility:
    """Theorem 2.2."""

    def test_feasible_when_entry_exceeds(self):
        assert is_feasible_conflict_vector((3, 5), (4, 4))

    def test_non_feasible_inside_box(self):
        assert not is_feasible_conflict_vector((1, 1), (4, 4))

    def test_boundary_is_not_feasible(self):
        # |gamma_i| == mu_i still connects points (strict inequality).
        assert not is_feasible_conflict_vector((4, -4), (4, 4))

    def test_negative_entries(self):
        assert is_feasible_conflict_vector((0, -5), (4, 4))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            is_feasible_conflict_vector((1, 2, 3), (4, 4))

    def test_matches_translation_geometry(self):
        """Feasible iff the index set admits no translation (Thm 2.2)."""
        j = ConstantBoundedIndexSet((3, 2))
        for g1 in range(-4, 5):
            for g2 in range(-4, 5):
                if g1 == 0 and g2 == 0:
                    continue
                assert is_feasible_conflict_vector((g1, g2), j.mu) == (
                    not j.admits_translation((g1, g2))
                )


class TestCorank1Vector:
    """Equation 3.2 / Theorem 3.1."""

    def test_example_3_1_shape(self):
        # gamma = (-pi2-pi3, pi1+pi3, pi1-pi2) up to normalization.
        t = MappingMatrix(space=((1, 1, -1),), schedule=(2, 1, 4))
        gamma = conflict_vector_corank1(t)
        expected = normalize_primitive([-(1 + 4), 2 + 4, 2 - 1])
        assert gamma == expected

    def test_example_3_2_shape(self):
        # S = [0,0,1]: gamma = (pi2, -pi1, 0).
        t = MappingMatrix(space=((0, 0, 1),), schedule=(5, 1, 1))
        assert conflict_vector_corank1(t) == normalize_primitive([1, -5, 0])

    def test_in_kernel(self):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        gamma = conflict_vector_corank1(t)
        assert matvec(t.rows(), gamma) == [0, 0]

    def test_normalization_convention(self):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        gamma = conflict_vector_corank1(t)
        first_nonzero = next(x for x in gamma if x != 0)
        assert first_nonzero > 0
        from repro.intlin import gcd_list

        assert gcd_list(gamma) == 1

    def test_wrong_corank_rejected(self):
        t = MappingMatrix(space=(), schedule=(1, 2, 3))  # co-rank 2
        with pytest.raises(ValueError):
            conflict_vector_corank1(t)

    def test_adjugate_construction_agrees(self, rng):
        """Equation 3.2 literally vs the HNF kernel — must match."""
        from repro.intlin import random_full_rank

        for _ in range(25):
            rows = random_full_rank(3, 4, rng=rng)
            t = MappingMatrix.from_rows(rows)
            assert conflict_vector_via_adjugate(t) == conflict_vector_corank1(t)

    def test_adjugate_with_singular_leading_block(self):
        """B (first n-1 columns) singular: the permutation fallback."""
        t = MappingMatrix.from_rows([[0, 0, 1], [0, 0, 2]])
        # rank 1 < 2: not full rank; must raise cleanly somewhere.
        with pytest.raises(ValueError):
            conflict_vector_via_adjugate(t)

    def test_adjugate_singular_but_full_rank(self):
        # First two columns dependent but T full rank.
        t = MappingMatrix.from_rows([[1, 2, 0], [2, 4, 1]])
        gamma = conflict_vector_via_adjugate(t)
        assert matvec(t.rows(), gamma) == [0, 0]
        assert gamma == conflict_vector_corank1(t)


class TestGenerators:
    """Theorem 4.2: HNF kernel columns generate all conflict vectors."""

    def test_example_4_2(self, paper_T_example21):
        gens = conflict_generators(paper_T_example21)
        assert len(gens) == 2
        for g in gens:
            assert matvec(paper_T_example21.rows(), g) == [0, 0]

    def test_trap_vector_is_integral_combination(self, paper_T_example21):
        """[1,0,-1,0] must be an integral combo of the generators."""
        from repro.intlin import solve_diophantine

        gens = conflict_generators(paper_T_example21)
        mat = [[col[i] for col in gens] for i in range(4)]
        assert solve_diophantine(mat, [1, 0, -1, 0]) is not None

    def test_square_mapping_no_generators(self):
        t = MappingMatrix(space=((1, 0),), schedule=(0, 1))
        assert conflict_generators(t) == []


class TestExactDeciders:
    def test_example_2_1_not_free(self, paper_T_example21):
        j = ConstantBoundedIndexSet((6, 6, 6, 6))
        assert not is_conflict_free_kernel_box(paper_T_example21, j.mu)
        assert not is_conflict_free_bruteforce(paper_T_example21, j)

    def test_example_5_1_free(self, matmul4):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        assert is_conflict_free_kernel_box(t, matmul4.mu)
        assert is_conflict_free_bruteforce(t, matmul4.index_set)

    def test_example_5_1_baseline_free(self, matmul4):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(2, 1, 4))
        assert is_conflict_free_kernel_box(t, matmul4.mu)

    def test_known_conflicted_schedule(self, matmul4):
        # Pi = [1,1,4]: conflict vector normalizes to [1,-1,0] (the
        # appendix's rejected extreme point).
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 1, 4))
        assert not is_conflict_free_kernel_box(t, matmul4.mu)
        assert not is_conflict_free_bruteforce(t, matmul4.index_set)

    def test_deciders_agree_on_random_mappings(self, rng):
        from repro.intlin import random_full_rank

        j = ConstantBoundedIndexSet((3, 3, 3))
        for _ in range(30):
            rows = random_full_rank(2, 3, rng=rng, magnitude=4)
            t = MappingMatrix.from_rows(rows)
            assert is_conflict_free_kernel_box(t, j.mu) == is_conflict_free_bruteforce(
                t, j
            )

    def test_deciders_agree_corank2(self, rng):
        from repro.intlin import random_full_rank

        j = ConstantBoundedIndexSet((2, 2, 2, 2))
        for _ in range(15):
            rows = random_full_rank(2, 4, rng=rng, magnitude=3)
            t = MappingMatrix.from_rows(rows)
            assert is_conflict_free_kernel_box(t, j.mu) == is_conflict_free_bruteforce(
                t, j
            )

    def test_mu_argument_validation(self, paper_T_example21):
        with pytest.raises(ValueError):
            is_conflict_free_kernel_box(paper_T_example21, (6, 6))
        with pytest.raises(ValueError):
            is_conflict_free_kernel_box(paper_T_example21)

    def test_index_set_argument(self, paper_T_example21):
        j = ConstantBoundedIndexSet((6, 6, 6, 6))
        assert is_conflict_free_kernel_box(paper_T_example21, index_set=j) is False

    def test_square_full_rank_always_free(self):
        t = MappingMatrix(space=((1, 0),), schedule=(0, 1))
        assert is_conflict_free_kernel_box(t, (100, 100))


class TestWitness:
    def test_witness_collides(self, paper_T_example21):
        j = ConstantBoundedIndexSet((6, 6, 6, 6))
        w = find_conflict_witness(paper_T_example21, j)
        assert w is not None
        j1, j2 = w
        assert j1 != j2
        assert j1 in j and j2 in j
        assert paper_T_example21.tau(j1) == paper_T_example21.tau(j2)

    def test_no_witness_when_free(self, matmul4):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        assert find_conflict_witness(t, matmul4.index_set) is None

    def test_no_witness_square(self):
        t = MappingMatrix(space=((1, 0),), schedule=(0, 1))
        assert find_conflict_witness(t, ConstantBoundedIndexSet((3, 3))) is None

    def test_witness_whenever_decider_says_conflicted(self):
        """Regression: the witness search enumerates exactly the set the
        kernel-box decider checks, so ``not free`` always yields a pair."""
        cases = [
            (((1, 1, -1),), (1, 1, 4), (4, 4, 4)),
            (((1, 1, -1),), (1, 1, 3), (3, 3, 3)),
            (((0, 0, 1),), (2, 2, 1), (4, 4, 4)),
            (((1, 2, 0),), (0, 0, 1), (2, 2, 2)),
        ]
        for space, pi, mu in cases:
            t = MappingMatrix(space=space, schedule=pi)
            j = ConstantBoundedIndexSet(mu)
            free = is_conflict_free_kernel_box(t, mu)
            w = find_conflict_witness(t, j)
            assert free == (w is None), (space, pi, mu)
            if w is not None:
                j1, j2 = w
                assert j1 != j2 and j1 in j and j2 in j
                assert t.tau(j1) == t.tau(j2)


class TestConflictMargin:
    def test_rejects_zero_mu_entry(self):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        with pytest.raises(ValueError, match="positive"):
            conflict_margin(t, (4, 0, 4))

    def test_rejects_negative_mu_entry(self):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        with pytest.raises(ValueError, match="positive"):
            conflict_margin(t, (4, -1, 4))

    def test_positive_mu_still_works(self):
        from fractions import Fraction

        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        assert conflict_margin(t, (4, 4, 4)) == Fraction(5, 4)


class TestAnalyze:
    def test_full_analysis_conflicted(self, paper_T_example21):
        j = ConstantBoundedIndexSet((6, 6, 6, 6))
        a = analyze_conflicts(paper_T_example21, j)
        assert not a.conflict_free
        assert a.witness is not None
        assert len(a.generators) == 2
        assert len(a.generator_feasible) == 2

    def test_full_analysis_free(self, matmul4):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        a = analyze_conflicts(t, matmul4.index_set)
        assert a.conflict_free
        assert a.witness is None
        assert all(a.generator_feasible)


class TestVectorizedBruteforce:
    """The NumPy-vectorized referee must agree with the scalar one."""

    def test_agrees_on_paper_examples(self, matmul4, paper_T_example21):
        from repro.core import is_conflict_free_bruteforce_vectorized
        from repro.model import ConstantBoundedIndexSet

        t_good = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        assert is_conflict_free_bruteforce_vectorized(t_good, matmul4.index_set)
        j4 = ConstantBoundedIndexSet((6, 6, 6, 6))
        assert not is_conflict_free_bruteforce_vectorized(paper_T_example21, j4)

    def test_agrees_on_random_mappings(self, rng):
        from repro.core import is_conflict_free_bruteforce_vectorized
        from repro.intlin import random_full_rank
        from repro.model import ConstantBoundedIndexSet

        j = ConstantBoundedIndexSet((3, 3, 3))
        for _ in range(30):
            rows = random_full_rank(2, 3, rng=rng, magnitude=4)
            t = MappingMatrix.from_rows(rows)
            assert is_conflict_free_bruteforce_vectorized(t, j) == (
                is_conflict_free_bruteforce(t, j)
            )

    def test_zero_d_mapping(self):
        from repro.core import is_conflict_free_bruteforce_vectorized
        from repro.model import ConstantBoundedIndexSet

        j = ConstantBoundedIndexSet((2, 2))
        injective = MappingMatrix(space=(), schedule=(1, 3))
        collapsing = MappingMatrix(space=(), schedule=(1, 1))
        assert is_conflict_free_bruteforce_vectorized(injective, j)
        assert not is_conflict_free_bruteforce_vectorized(collapsing, j)
