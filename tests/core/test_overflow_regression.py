"""Regression tests for silent int64 wraparound in conflict analysis.

The vectorized conflict decider used to materialize ``tau`` images with
``np.array(t.rows(), dtype=np.int64) @ points`` — for mappings with
large entries the product wraps modulo 2**64 and two distinct images
can collide (or a genuine collision can split), flipping the verdict
with no error raised.  The image computation now goes through
:meth:`IntMat.image_of_points`, which certifies the int64 bound before
vectorizing and otherwise computes the exact object-dtype product.

These tests pin the contract at the scales the bug bites: entries just
past 2**31, and entries within a couple of bits of 2**63.
"""

import numpy as np

from repro.core import (
    analyze_conflicts,
    is_conflict_free_bruteforce,
    is_conflict_free_bruteforce_vectorized,
)
from repro.core.mapping import MappingMatrix
from repro.model import ConstantBoundedIndexSet

J3 = ConstantBoundedIndexSet((2, 2, 2))


def _both_backends_agree(t: MappingMatrix) -> bool:
    """Vectorized verdict, asserted identical to the pure-Python referee."""
    fast = is_conflict_free_bruteforce_vectorized(t, J3)
    exact = is_conflict_free_bruteforce(t, J3)
    assert fast == exact
    return fast


class TestEntriesPast2_31:
    """Entries > 2**31 still fit the certified int64 path."""

    def test_conflict_free_mapping(self):
        t = MappingMatrix(
            space=((2**31 + 1, 0, 0), (0, 1, 0)), schedule=(0, 0, 1)
        )
        assert _both_backends_agree(t) is True

    def test_conflicting_mapping(self):
        # tau(j) = ((2**31+1) j1, j2 + j3): j = (0,0,1) and (0,1,0) collide.
        t = MappingMatrix(space=((2**31 + 1, 0, 0),), schedule=(0, 1, 1))
        assert _both_backends_agree(t) is False


class TestEntriesNear2_63:
    """Entries near 2**63 exceed the product bound; the decider must
    promote to exact arithmetic instead of wrapping."""

    def test_conflict_free_mapping_promotes(self):
        big = 2**62
        t = MappingMatrix(space=((big, 0, 0), (0, 1, 0)), schedule=(0, 0, 1))
        images = t.matrix.image_of_points(J3.points_array())
        assert images.dtype == object  # exact route, not a wrapped int64 one
        assert _both_backends_agree(t) is True

    def test_conflicting_mapping_promotes(self):
        big = 2**63 - 1
        t = MappingMatrix(space=((big, 0, 0),), schedule=(0, 1, 1))
        assert _both_backends_agree(t) is False

    def test_wraparound_would_have_merged_distinct_images(self):
        # 4 * 2**62 == 2**64 wraps to 0 in int64 arithmetic, colliding
        # with the image of the origin; the exact product keeps them apart.
        big = 2**62
        t = MappingMatrix(space=((big, 0),), schedule=(0, 1))
        pts = np.array([[4, 0], [0, 0]])
        images = t.matrix.image_of_points(pts)
        assert images.dtype == object
        assert images[0][0] == 4 * big
        assert tuple(images[0]) != tuple(images[1])
        # The failure mode being guarded against: modulo-2**64 the two
        # images are identical.
        assert (4 * big) % 2**64 == 0 == images[1][0]

    def test_analyze_conflicts_with_huge_entries(self):
        big = 2**62
        t = MappingMatrix(space=((big, 0, 0),), schedule=(0, 1, 1))
        analysis = analyze_conflicts(t, J3)
        assert not analysis.conflict_free
        j1, j2 = analysis.witness
        assert t.tau(j1) == t.tau(j2)
        assert j1 != j2
