"""Unit tests for repro.core.schedule (Section 2 time accounting)."""

import pytest

from repro.core import (
    LinearSchedule,
    objective_f,
    total_execution_time,
    validate_schedule,
)
from repro.model import ConstantBoundedIndexSet, matrix_multiplication


class TestObjective:
    def test_equation_2_7(self):
        # Example 5.1: Pi = [1, 4, 1], mu = 4: f = 24, t = 25.
        assert objective_f((1, 4, 1), (4, 4, 4)) == 24
        assert total_execution_time((1, 4, 1), (4, 4, 4)) == 25

    def test_absolute_values(self):
        assert objective_f((-1, 4, -1), (4, 4, 4)) == 24

    def test_zero_schedule(self):
        assert objective_f((0, 0), (9, 9)) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            objective_f((1, 1), (4, 4, 4))

    def test_matches_index_set_diameter(self):
        j = ConstantBoundedIndexSet((3, 5, 2))
        pi = (2, -1, 4)
        assert objective_f(pi, j.mu) == j.diameter_along(pi)

    def test_monotonicity_theorem_2_1(self):
        """Increasing any |pi_i| strictly increases t (Theorem 2.1)."""
        mu = (4, 4, 4)
        base = (1, 2, 3)
        t0 = total_execution_time(base, mu)
        for i in range(3):
            bumped = list(base)
            bumped[i] += 1
            assert total_execution_time(bumped, mu) > t0


class TestValidate:
    def test_all_satisfied(self, matmul4):
        assert validate_schedule((1, 1, 1), matmul4) == []

    def test_violations_reported(self, matmul4):
        # Pi = (1, 0, -1): d2 gives 0, d3 gives -1.
        assert validate_schedule((1, 0, -1), matmul4) == [1, 2]

    def test_tc_constraints(self, tc4):
        assert validate_schedule((5, 1, 1), tc4) == []
        bad = validate_schedule((2, 1, 1), tc4)
        assert 2 in bad  # d3 = (1,-1,-1): 2-1-1 = 0


class TestLinearSchedule:
    J = ConstantBoundedIndexSet((4, 4, 4))

    def test_accounting(self):
        s = LinearSchedule(pi=(1, 4, 1), index_set=self.J)
        assert s.f == 24
        assert s.total_time == 25

    def test_time_of_point(self):
        s = LinearSchedule(pi=(1, 4, 1), index_set=self.J)
        assert s.time_of((2, 3, 1)) == 15

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            LinearSchedule(pi=(1, 2), index_set=self.J)

    def test_respects(self):
        algo = matrix_multiplication(4)
        assert LinearSchedule(pi=(1, 1, 1), index_set=self.J).respects(algo)
        assert not LinearSchedule(pi=(1, 0, 1), index_set=self.J).respects(algo)

    def test_ordering_by_time_then_lex(self):
        a = LinearSchedule(pi=(1, 1, 1), index_set=self.J)
        b = LinearSchedule(pi=(1, 4, 1), index_set=self.J)
        c = LinearSchedule(pi=(4, 1, 1), index_set=self.J)
        assert a < b
        assert b < c  # equal time (24): lexicographic tie-break
        assert sorted([c, b, a]) == [a, b, c]

    def test_coerces_numpy(self):
        import numpy as np

        s = LinearSchedule(pi=np.array([1, 4, 1]), index_set=self.J)
        assert s.pi == (1, 4, 1)

    def test_sort_key_stable(self):
        s = LinearSchedule(pi=(1, 4, 1), index_set=self.J)
        assert s.sort_key() == (25, (1, 4, 1))
