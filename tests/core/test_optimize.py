"""Unit tests for repro.core.optimize (Procedure 5.1)."""

import pytest

from repro.core import (
    MappingMatrix,
    enumerate_schedule_vectors,
    is_conflict_free_kernel_box,
    procedure_5_1,
)
from repro.model import (
    ConstantBoundedIndexSet,
    UniformDependenceAlgorithm,
    matrix_multiplication,
)


class TestEnumeration:
    def test_ring_contents(self):
        # mu = (1, 1), f_max = 2: all nonzero pi with |pi1| + |pi2| <= 2.
        vecs = set(enumerate_schedule_vectors((1, 1), 2))
        assert (0, 0) not in vecs
        assert (1, 1) in vecs and (-2, 0) in vecs
        assert all(abs(a) + abs(b) <= 2 for a, b in vecs)
        # count: |{|a|+|b| <= 2}| = 13 lattice points, minus origin.
        assert len(vecs) == 12

    def test_f_min_excludes_inner_ring(self):
        inner = set(enumerate_schedule_vectors((1, 1), 1))
        ring = set(enumerate_schedule_vectors((1, 1), 2, f_min=2))
        assert inner.isdisjoint(ring)
        assert inner | ring == set(enumerate_schedule_vectors((1, 1), 2))

    def test_weighted_budget(self):
        vecs = list(enumerate_schedule_vectors((3, 1), 3))
        assert (1, 0) in vecs  # cost 3
        assert (0, 3) in vecs  # cost 3
        assert (1, 1) not in vecs  # cost 4

    def test_nonnegative_mode(self):
        vecs = set(enumerate_schedule_vectors((1, 1), 2, nonnegative=True))
        assert all(a >= 0 and b >= 0 for a, b in vecs)
        assert (1, 1) in vecs

    def test_zero_vector_never_yielded(self):
        assert (0, 0, 0) not in set(enumerate_schedule_vectors((1, 1, 1), 3))

    def test_lazy(self):
        gen = enumerate_schedule_vectors((1,) * 4, 8)
        assert next(iter(gen)) is not None  # does not materialize everything


class TestProcedure51:
    def test_example_5_1_optimal_time(self, matmul4):
        res = procedure_5_1(matmul4, [[1, 1, -1]])
        assert res.found
        assert res.total_time == 4 * (4 + 2) + 1  # mu(mu+2)+1

    def test_example_5_2_optimal(self, tc4):
        res = procedure_5_1(tc4, [[0, 0, 1]])
        assert res.schedule.pi == (5, 1, 1)  # [mu+1, 1, 1]
        assert res.total_time == 4 * (4 + 3) + 1

    def test_winner_is_verified_conflict_free(self, matmul4):
        res = procedure_5_1(matmul4, [[1, 1, -1]])
        assert is_conflict_free_kernel_box(res.mapping, matmul4.mu)

    def test_winner_respects_dependences(self, matmul4):
        res = procedure_5_1(matmul4, [[1, 1, -1]])
        assert res.mapping.respects_dependences(matmul4)

    def test_exact_method_same_optimum(self, matmul4):
        auto = procedure_5_1(matmul4, [[1, 1, -1]], method="auto")
        exact = procedure_5_1(matmul4, [[1, 1, -1]], method="exact")
        assert auto.total_time == exact.total_time

    def test_paper_method(self, matmul4):
        paper = procedure_5_1(matmul4, [[1, 1, -1]], method="paper")
        assert paper.total_time == 25

    def test_optimality_certified_by_sweep(self, matmul4):
        """No valid conflict-free schedule has smaller t (brute check)."""
        res = procedure_5_1(matmul4, [[1, 1, -1]])
        best = res.total_time
        for pi in enumerate_schedule_vectors(matmul4.mu, best - 2):
            t = MappingMatrix(space=((1, 1, -1),), schedule=pi)
            if not matmul4.is_acyclic_under(pi):
                continue
            if t.rank() != 2:
                continue
            assert not is_conflict_free_kernel_box(t, matmul4.mu), (
                f"schedule {pi} beats the claimed optimum"
            )

    def test_stats_populated(self, matmul4):
        res = procedure_5_1(matmul4, [[1, 1, -1]])
        assert res.candidates_examined > 0
        assert res.rings_expanded >= 0

    def test_extra_constraint_filters(self, matmul4):
        # Force pi_2 even: the winner must change accordingly.
        res = procedure_5_1(
            matmul4,
            [[1, 1, -1]],
            extra_constraint=lambda t: t.schedule[1] % 2 == 0,
        )
        assert res.found
        assert res.schedule.pi[1] % 2 == 0

    def test_unsatisfiable_returns_not_found(self):
        # An impossible extra constraint with a tiny search bound.
        algo = matrix_multiplication(2)
        res = procedure_5_1(
            algo,
            [[1, 1, -1]],
            extra_constraint=lambda t: False,
            max_bound=10,
        )
        assert not res.found
        assert res.schedule is None
        with pytest.raises(ValueError):
            _ = res.total_time

    def test_search_smaller_mu(self):
        """mu = 2: optimum from the paper's formula mu(mu+2)+1 = 9."""
        algo = matrix_multiplication(2)
        res = procedure_5_1(algo, [[1, 1, -1]])
        assert res.total_time == 9

    def test_mu_3_matches_ref23_time(self):
        """At mu = 3 the paper notes [23]'s Pi' = [2,1,mu] is optimal:
        both formulas give mu(mu+3)+1 = 19?  No: the paper's optimum is
        mu(mu+2)+1 = 16 at mu=4 but at mu=3 Pi' is optimal with t=19.
        Verify our search at mu=3 does not beat t([2,1,3]) = 19 ... it
        may tie or beat only if a conflict-free schedule exists below.
        """
        algo = matrix_multiplication(3)
        res = procedure_5_1(algo, [[1, 1, -1]])
        baseline_t = 1 + 3 * (2 + 1 + 3)
        assert res.total_time <= baseline_t

    def test_corank2_search(self):
        """2-D bit-level-style mapping: search with the exact auto mode."""
        from repro.model import bit_level_matrix_multiplication

        algo = bit_level_matrix_multiplication(1, 1)
        space = [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]]
        res = procedure_5_1(algo, space)
        assert res.found
        assert res.mapping.rank() == 3
        assert is_conflict_free_kernel_box(res.mapping, algo.mu)

    def test_zero_dependence_algorithm(self):
        """With no dependences every nonzero Pi is dependence-valid; the
        conflict condition alone drives the search."""
        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((2, 2)), dependence_matrix=()
        )
        res = procedure_5_1(algo, [])
        assert res.found
        # k = 1 mapping of a 2-D set: needs |pi_i| > mu_j style escape.
        assert is_conflict_free_kernel_box(res.mapping, algo.mu)


class TestFindAllOptima:
    def test_matmul_mu4_tie_set(self, matmul4):
        from repro.core import find_all_optima

        optima = find_all_optima(matmul4, [[1, 1, -1]])
        pis = {o.schedule.pi for o in optima}
        # The paper lists two optima; the full tie set has six.
        assert (1, 4, 1) in pis
        assert (4, 1, 1) in pis
        assert len(pis) == 6
        times = {o.total_time for o in optima}
        assert times == {25}

    def test_all_optima_conflict_free(self, matmul4):
        from repro.core import find_all_optima, is_conflict_free_kernel_box

        for o in find_all_optima(matmul4, [[1, 1, -1]]):
            assert is_conflict_free_kernel_box(o.mapping, matmul4.mu)
            assert o.mapping.respects_dependences(matmul4)

    def test_tc_unique_optimum(self, tc4):
        from repro.core import find_all_optima

        optima = find_all_optima(tc4, [[0, 0, 1]])
        assert [o.schedule.pi for o in optima] == [(5, 1, 1)]

    def test_empty_when_not_found(self):
        from repro.core import find_all_optima

        algo = matrix_multiplication(2)
        assert find_all_optima(algo, [[1, 1, -1]], max_bound=3) == []

    def test_tie_sweep_follows_sort_key_order(self, matmul4):
        # Regression: the sweep used to sort raw pi tuples with
        # sorted(); the documented order is LinearSchedule.sort_key
        # (total time, then the vector) — the search's own visit order.
        from repro.core import find_all_optima

        optima = find_all_optima(matmul4, [[1, 1, -1]])
        keys = [o.schedule.sort_key() for o in optima]
        assert keys == sorted(keys)
        pis = [o.schedule.pi for o in optima]
        # The paper's Example 5.1 pair, in sweep order.
        assert pis.index((1, 4, 1)) < pis.index((4, 1, 1))

    def test_tie_results_do_not_alias_stats(self, matmul4):
        # Regression: every tie result used to share the single stats
        # object of the initial search; mutating one result's telemetry
        # leaked into all its siblings.
        from repro.core import find_all_optima

        optima = find_all_optima(matmul4, [[1, 1, -1]])
        assert len(optima) >= 2
        assert len({id(o.stats) for o in optima}) == len(optima)
        first, second = optima[0], optima[1]
        assert first.stats == second.stats  # same values...
        first.stats.wall_time += 123.0      # ...but independent objects
        assert second.stats.wall_time != first.stats.wall_time
