"""Unit tests for repro.core.bitlevel (formulation (5.5)-(5.6))."""

import pytest

from repro.core import (
    MappingMatrix,
    check_formulation_5_6,
    is_conflict_free_kernel_box,
    procedure_5_1,
    solve_bitlevel_formulation,
    theorem_4_7,
)
from repro.model import (
    bit_level_lu_decomposition,
    bit_level_matrix_multiplication,
)

SPACE = [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]]


class TestConstraintChecker:
    def test_matches_theorem_4_7_when_applicable(self):
        """Clauses 3-6 of (5.6) are Theorem 4.7 through Prop 8.1: on
        non-degenerate candidates both must agree."""
        algo = bit_level_matrix_multiplication(1, 1)
        checked = 0
        import itertools

        for pi in itertools.product(range(1, 4), repeat=5):
            t = MappingMatrix(space=tuple(map(tuple, SPACE)), schedule=pi)
            if t.rank() != 3:
                continue
            v56 = check_formulation_5_6(SPACE, pi, algo.mu)
            if v56.degenerate:
                continue
            checked += 1
            v47 = theorem_4_7(t, algo.mu)
            assert v56.holds == v47.holds, pi
            if checked > 60:
                break
        assert checked > 10

    def test_degenerate_pi_rejected(self):
        # h33 = pi3 - pi1, h34 = pi4 - pi2 for this S: zero both.
        v = check_formulation_5_6(SPACE, (1, 1, 1, 1, 5), (2,) * 5)
        assert v.degenerate
        assert not v.holds

    def test_clause_rows_reported(self):
        algo = bit_level_matrix_multiplication(1, 1)
        res = solve_bitlevel_formulation(algo, SPACE)
        assert res.found
        rows = res.verdict.witnesses["clause_rows"]
        assert set(rows) == {3, 4, 5, 6}
        assert all(v is not None for v in rows.values())

    def test_positive_verdict_implies_conflict_free(self):
        """Sufficiency of the formulation's acceptance test."""
        algo = bit_level_matrix_multiplication(1, 1)
        import itertools

        hits = 0
        # mu = (1,...,1) needs |u| entries > 1, so passing schedules are
        # sparse at small Pi: sweep a wider box (the solver's winner is
        # (1,1,3,5,1)).
        for pi in itertools.product(range(1, 7), repeat=5):
            t = MappingMatrix(space=tuple(map(tuple, SPACE)), schedule=pi)
            if t.rank() != 3:
                continue
            v = check_formulation_5_6(SPACE, pi, algo.mu)
            if v.holds:
                hits += 1
                assert is_conflict_free_kernel_box(t, algo.mu), pi
            if hits >= 20:
                break
        assert hits > 0


class TestSolver:
    def test_requires_normalized_space(self):
        algo = bit_level_matrix_multiplication(1, 1)
        with pytest.raises(ValueError, match="normalizations"):
            solve_bitlevel_formulation(algo, [[2, 0, 1, 0, 0], [0, 1, 0, 1, 0]])

    def test_agrees_with_procedure_5_1(self):
        """Within the formulation's (sufficient) acceptance test, the
        monotone search finds the same optimum Procedure 5.1 certifies
        exactly — on the bit-level matmul instances they coincide."""
        for mu, word in [(1, 1), (2, 1), (1, 2)]:
            algo = bit_level_matrix_multiplication(mu, word)
            via_56 = solve_bitlevel_formulation(algo, SPACE)
            via_51 = procedure_5_1(algo, SPACE)
            assert via_56.found and via_51.found
            assert via_56.total_time == via_51.total_time, (mu, word)

    def test_bit_lu_instance(self):
        algo = bit_level_lu_decomposition(1, 1)
        res = solve_bitlevel_formulation(algo, SPACE)
        assert res.found
        assert is_conflict_free_kernel_box(res.mapping, algo.mu)

    def test_winner_clean_in_simulation(self):
        from repro.systolic import simulate_mapping

        algo = bit_level_matrix_multiplication(1, 1)
        res = solve_bitlevel_formulation(algo, SPACE)
        report = simulate_mapping(algo, res.mapping)
        assert report.ok
        assert report.makespan == res.total_time

    def test_not_found_within_tiny_bound(self):
        algo = bit_level_matrix_multiplication(1, 1)
        res = solve_bitlevel_formulation(algo, SPACE, max_bound=3)
        assert not res.found
