"""Unit tests for repro.core.prop81 (Proposition 8.1)."""


import pytest

from repro.core import (
    MappingMatrix,
    conflict_generators,
    prop81_applicable,
    prop81_columns,
)
from repro.intlin import matvec, solve_diophantine


SPACE = [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]]


class TestApplicability:
    def test_normalized_space(self):
        assert prop81_applicable(SPACE)

    def test_s11_not_one(self):
        assert not prop81_applicable([[2, 0, 1, 0, 0], [0, 1, 0, 1, 0]])

    def test_second_normalization(self):
        # s22 - s21*s12 must be 1.
        assert prop81_applicable([[1, 1, 0, 0, 0], [1, 2, 0, 1, 0]])
        assert not prop81_applicable([[1, 1, 0, 0, 0], [1, 3, 0, 1, 0]])

    def test_wrong_shape(self):
        assert not prop81_applicable([[1, 0, 0]])
        assert not prop81_applicable([[1, 0, 1, 0, 0]])

    def test_rejected_on_columns_call(self):
        with pytest.raises(ValueError, match="s11"):
            prop81_columns([[2, 0, 1, 0, 0], [0, 1, 0, 1, 0]], [1, 1, 1, 1, 1])


class TestColumns:
    def test_columns_in_kernel(self):
        res = prop81_columns(SPACE, [1, 1, 1, 7, 8])
        t = MappingMatrix(space=tuple(map(tuple, SPACE)), schedule=(1, 1, 1, 7, 8))
        assert matvec(t.rows(), list(res.u4)) == [0, 0, 0]
        assert matvec(t.rows(), list(res.u5)) == [0, 0, 0]

    def test_columns_linearly_independent(self):
        from repro.intlin import rank

        res = prop81_columns(SPACE, [1, 1, 1, 7, 8])
        assert rank([list(res.u4), list(res.u5)]) == 2

    def test_pi_length_validated(self):
        with pytest.raises(ValueError, match="5 entries"):
            prop81_columns(SPACE, [1, 1, 1])

    def test_degenerate_h_rejected(self):
        # Choose Pi making h33 = h34 = 0: for this S, h33 = -pi1 + pi3
        # and h34 = -pi2 + pi4 (c-constants vanish appropriately).
        res_h = prop81_columns(SPACE, [1, 1, 2, 3, 4]).h
        # compute a Pi that zeroes h33, h34 by construction:
        with pytest.raises(ValueError, match="degenerates"):
            prop81_columns(SPACE, [1, 1, 1, 1, 5])
        _ = res_h

    def test_same_lattice_as_hnf(self, rng):
        """Prop 8.1 columns and the generic HNF kernel must generate the
        same rank-2 lattice: each expresses the other integrally."""
        tried = 0
        for _ in range(40):
            pi = [rng.randint(-4, 4) for _ in range(5)]
            t = MappingMatrix(space=tuple(map(tuple, SPACE)), schedule=tuple(pi))
            if t.rank() != 3:
                continue
            try:
                res = prop81_columns(SPACE, pi)
            except ValueError:
                continue  # degenerate h pair
            tried += 1
            hnf_gens = conflict_generators(t)
            prop_mat = [[res.u4[i], res.u5[i]] for i in range(5)]
            hnf_mat = [[col[i] for col in hnf_gens] for i in range(5)]
            for col in hnf_gens:
                assert solve_diophantine(prop_mat, col) is not None
            for col in (list(res.u4), list(res.u5)):
                assert solve_diophantine(hnf_mat, col) is not None
        assert tried >= 10

    def test_bezout_identity_recorded(self):
        res = prop81_columns(SPACE, [1, 1, 1, 7, 8])
        (p1, q1), _ = res.bezout
        h33, h34, _h35 = res.h
        g1, _g2 = res.g
        assert p1 * h33 + q1 * h34 == g1

    def test_h_values_linear_in_pi(self):
        """Equations 8.4 are linear: h(a + b) = h(a) + h(b) - h(0)."""
        pi_a = [1, 2, 3, 4, 5]
        pi_b = [2, 0, 1, 1, 3]
        pi_ab = [a + b for a, b in zip(pi_a, pi_b)]

        def h_of(pi):
            try:
                return prop81_columns(SPACE, pi).h
            except ValueError:
                return None

        ha, hb, hab = h_of(pi_a), h_of(pi_b), h_of(pi_ab)
        if ha and hb and hab:
            assert all(x + y == z for x, y, z in zip(ha, hb, hab))

    def test_second_normalized_space_family(self, rng):
        """A different S satisfying the normalizations also works."""
        space = [[1, 1, 0, 2, 0], [1, 2, 1, 0, 1]]
        assert prop81_applicable(space)
        for _ in range(20):
            pi = [rng.randint(-3, 3) for _ in range(5)]
            t = MappingMatrix(space=tuple(map(tuple, space)), schedule=tuple(pi))
            if t.rank() != 3:
                continue
            try:
                res = prop81_columns(space, pi)
            except ValueError:
                continue
            assert matvec(t.rows(), list(res.u4)) == [0, 0, 0]
            assert matvec(t.rows(), list(res.u5)) == [0, 0, 0]
