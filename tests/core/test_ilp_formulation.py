"""Unit tests for repro.core.ilp_formulation (Section 5 formulations)."""

import pytest

from repro.core import (
    MappingMatrix,
    build_corank1_subproblems,
    conflict_functional_rows,
    conflict_vector_corank1,
    procedure_5_1,
    solve_corank1_optimal,
)
from repro.intlin import normalize_primitive
from repro.model import convolution_1d, matrix_multiplication, transitive_closure


class TestFunctionalRows:
    def test_equation_3_5(self):
        """S = [1,1,-1]: gamma = +-(pi2+pi3, -(pi1+pi3), -(pi1-pi2))."""
        rows = conflict_functional_rows([[1, 1, -1]], 3)
        # Evaluate at several Pi and compare with the normalized kernel.
        for pi in [(1, 4, 1), (2, 1, 4), (3, 1, 1)]:
            f_vals = [sum(c * p for c, p in zip(row, pi)) for row in rows]
            t = MappingMatrix(space=((1, 1, -1),), schedule=pi)
            gamma = conflict_vector_corank1(t)
            assert normalize_primitive(f_vals) == gamma

    def test_equation_3_7(self):
        """S = [0,0,1]: gamma proportional to (pi2, -pi1, 0)."""
        rows = conflict_functional_rows([[0, 0, 1]], 3)
        for pi in [(5, 1, 1), (9, 1, 1), (7, 3, 2)]:
            f_vals = [sum(c * p for c, p in zip(row, pi)) for row in rows]
            expected = normalize_primitive([pi[1], -pi[0], 0])
            assert normalize_primitive(f_vals) == expected

    def test_linearity(self):
        """Proposition 3.2: each f_i is linear in Pi."""
        rows = conflict_functional_rows([[1, 1, -1]], 3)
        pi_a, pi_b = (1, 2, 3), (4, 5, 6)
        for row in rows:
            fa = sum(c * p for c, p in zip(row, pi_a))
            fb = sum(c * p for c, p in zip(row, pi_b))
            fab = sum(c * (a + b) for c, a, b in zip(row, pi_a, pi_b))
            assert fab == fa + fb

    def test_kernel_identity(self):
        """T . f(Pi) == 0 for every Pi (f is the kernel direction)."""
        rows = conflict_functional_rows([[1, 1, -1]], 3)
        for pi in [(1, 4, 1), (10, -3, 7)]:
            f_vals = [sum(c * p for c, p in zip(row, pi)) for row in rows]
            t = MappingMatrix(space=((1, 1, -1),), schedule=pi)
            from repro.intlin import matvec

            assert matvec(t.rows(), f_vals) == [0, 0]

    def test_wrong_space_shape_rejected(self):
        with pytest.raises(ValueError, match="n-2"):
            conflict_functional_rows([[1, 1, -1], [0, 1, 0]], 3)


class TestSubproblems:
    def test_matmul_partition_size(self, matmul4):
        subs = build_corank1_subproblems(matmul4, [[1, 1, -1]])
        # n = 3 functionals, all non-zero, two signs each.
        assert len(subs) == 6

    def test_tc_partition_drops_zero_functional(self, tc4):
        # f_3 is identically zero for S = [0,0,1] (Eq 3.7).
        subs = build_corank1_subproblems(tc4, [[0, 0, 1]])
        assert len(subs) == 4

    def test_auto_orthant_positive_for_matmul(self, matmul4):
        subs = build_corank1_subproblems(matmul4, [[1, 1, -1]])
        assert all(info["encoding"] == "positive" for _p, info in subs)

    def test_auto_orthant_split_when_units_missing(self):
        algo = convolution_1d(3, 8)
        subs = build_corank1_subproblems(algo, [])
        # convolution's D lacks unit vector coverage of... actually it
        # has (0,1) and (1,0); with n=2, S has 0 rows.  Units present:
        # positive encoding chosen.
        assert all(info["encoding"] == "positive" for _p, info in subs)

    def test_split_encoding_requested(self, matmul4):
        subs = build_corank1_subproblems(matmul4, [[1, 1, -1]], orthant="split")
        prog, info = subs[0]
        assert info["encoding"] == "split"
        assert prog.num_vars == 6

    def test_bad_orthant_rejected(self, matmul4):
        with pytest.raises(ValueError):
            build_corank1_subproblems(matmul4, [[1, 1, -1]], orthant="diagonal")

    def test_programs_have_dependence_rows(self, matmul4):
        subs = build_corank1_subproblems(matmul4, [[1, 1, -1]])
        prog, _ = subs[0]
        # 3 dependence rows + 1 disjunct row.
        assert prog.a_ub.shape == (4, 3)


class TestSolve:
    def test_example_5_1(self, matmul4):
        res = solve_corank1_optimal(matmul4, [[1, 1, -1]])
        assert res.found
        assert res.schedule.pi in ((1, 4, 1), (4, 1, 1))
        assert res.total_time == 25

    def test_example_5_1_gcd_rejection_happens(self, matmul4):
        """The appendix's Pi_1 = [1,1,mu] must be found and rejected."""
        res = solve_corank1_optimal(matmul4, [[1, 1, -1]])
        assert res.rejected_by_gcd >= 1

    def test_example_5_2(self, tc4):
        res = solve_corank1_optimal(tc4, [[0, 0, 1]])
        assert res.schedule.pi == (5, 1, 1)
        assert res.total_time == 29

    def test_branch_bound_solver_agrees(self, matmul4):
        v = solve_corank1_optimal(matmul4, [[1, 1, -1]], solver="vertices")
        b = solve_corank1_optimal(matmul4, [[1, 1, -1]], solver="branch-bound")
        assert v.total_time == b.total_time

    def test_unknown_solver_rejected(self, matmul4):
        with pytest.raises(ValueError):
            solve_corank1_optimal(matmul4, [[1, 1, -1]], solver="oracle")

    def test_agrees_with_procedure_5_1_across_mu(self):
        for mu in (2, 3, 5, 6):
            algo = matrix_multiplication(mu)
            ilp = solve_corank1_optimal(algo, [[1, 1, -1]])
            search = procedure_5_1(algo, [[1, 1, -1]])
            assert ilp.total_time == search.total_time, f"mu={mu}"

    def test_agrees_on_tc_across_mu(self):
        for mu in (2, 3, 5):
            algo = transitive_closure(mu)
            ilp = solve_corank1_optimal(algo, [[0, 0, 1]])
            search = procedure_5_1(algo, [[0, 0, 1]])
            assert ilp.total_time == search.total_time, f"mu={mu}"

    def test_split_encoding_same_optimum(self, matmul4):
        pos = solve_corank1_optimal(matmul4, [[1, 1, -1]], orthant="positive")
        split = solve_corank1_optimal(matmul4, [[1, 1, -1]], orthant="split")
        assert pos.total_time == split.total_time

    def test_result_mapping_conflict_free(self, matmul4):
        from repro.core import is_conflict_free_kernel_box

        res = solve_corank1_optimal(matmul4, [[1, 1, -1]])
        assert is_conflict_free_kernel_box(res.mapping, matmul4.mu)

    def test_counters_populated(self, matmul4):
        res = solve_corank1_optimal(matmul4, [[1, 1, -1]])
        assert res.subproblems == 6
        assert res.candidates_checked >= 1
