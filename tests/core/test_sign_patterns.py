"""Focused unit tests for the sign-pattern condition machinery.

These exercise :func:`sign_pattern_condition` and
:func:`subset_sign_pattern_condition` directly on hand-built ``U``
matrices, pinning the clause logic the composite theorems rely on.
"""


from repro.core import sign_pattern_condition, subset_sign_pattern_condition


MU = (2, 2, 2, 2)


class TestSignPatternClauses:
    def test_both_patterns_satisfied(self):
        # k = 2, last two columns: row 0 same-sign big, row 1 mixed big.
        u = [
            [1, 0, 3, 4],   # same sign, |3+4| = 7 > 2
            [0, 1, 5, -4],  # opposite, |5-(-4)| = 9 > 2
            [0, 0, 1, 0],
            [0, 0, 0, 1],
        ]
        v = sign_pattern_condition(u, 2, MU)
        assert v.holds
        rows = v.witnesses["pattern_rows"]
        assert rows[(1, 1)] == 0
        assert rows[(1, -1)] == 1

    def test_same_sign_clause_fails(self):
        # No row has same-sign entries with a big enough sum.
        u = [
            [1, 0, 3, -4],
            [0, 1, 5, -4],
            [0, 0, 1, -1],
            [0, 0, 1, -2],
        ]
        v = sign_pattern_condition(u, 2, MU)
        assert not v.holds
        assert v.witnesses["failing_pattern"] == (1, 1)

    def test_negative_pair_counts_as_same_sign(self):
        """(-3, -4) must satisfy the (+,+) pattern (global negation)."""
        u = [
            [1, 0, -3, -4],
            [0, 1, 5, -4],
            [0, 0, 1, 0],
            [0, 0, 0, 1],
        ]
        assert sign_pattern_condition(u, 2, MU).holds

    def test_zero_is_sign_free(self):
        """A zero entry pairs with either sign: row (0, 5) works for
        both patterns when |5| > mu."""
        u = [
            [1, 0, 0, 5],
            [0, 1, 0, -5],
            [0, 0, 1, 0],
            [0, 0, 0, 1],
        ]
        v = sign_pattern_condition(u, 2, MU)
        assert v.holds

    def test_boundary_not_strict_enough(self):
        """|sum| == mu exactly is NOT > mu: clause must fail."""
        u = [
            [1, 0, 1, 1],   # sum 2 == mu
            [0, 1, 1, -1],  # diff 2 == mu
            [0, 0, 1, 0],
            [0, 0, 0, 1],
        ]
        assert not sign_pattern_condition(u, 2, MU).holds


class TestSubsetClosure:
    def test_subset_failure_detected(self):
        """Columns fine in triple combination but a pair cancels: the
        subset condition must fail on that pair."""
        u = [
            [1, 0, 3, 3, -3],
            [0, 1, 3, -3, 3],
            [0, 0, 1, 0, 0],
            [0, 0, 0, 1, 0],
            [0, 0, 0, 0, 1],
        ]
        mu5 = (2, 2, 2, 2, 2)
        v = subset_sign_pattern_condition(u, 2, mu5)
        # singleton subsets: each column has an entry 3 > 2: fine.
        # pair (col3, col4) with signs (+,-): row0 gives 3-3=0, row1
        # gives 3+3... careful: verify via the verdict itself.
        if not v.holds:
            assert v.witnesses["failing"]

    def test_equivalent_to_plain_at_singletons(self):
        """For co-rank 1 the subset condition is exactly column
        feasibility."""
        u = [
            [1, 0, 5],
            [0, 1, 0],
            [0, 0, 1],
        ]
        mu3 = (2, 2, 2)
        v = subset_sign_pattern_condition(u, 2, mu3)
        assert v.holds  # column (5, 0, 1): |5| > 2

    def test_singleton_failure(self):
        u = [
            [1, 0, 1],
            [0, 1, 2],
            [0, 0, 1],
        ]
        mu3 = (2, 2, 2)
        assert not subset_sign_pattern_condition(u, 2, mu3).holds

    def test_witnesses_enumerate_failures(self):
        u = [
            [1, 0, 1, 1],
            [0, 1, 1, -1],
            [0, 0, 1, 0],
            [0, 0, 0, 1],
        ]
        v = subset_sign_pattern_condition(u, 2, MU)
        assert not v.holds
        failing = v.witnesses["failing"]
        # Both singletons fail (columns within the box) plus pairs.
        subsets = {f[0] for f in failing}
        assert (0,) in subsets and (1,) in subsets
