"""Unit tests for repro.core.free_schedule (dependence-only optima)."""

import pytest

from repro.core import conflict_penalty, optimal_free_schedule
from repro.model import (
    ConstantBoundedIndexSet,
    UniformDependenceAlgorithm,
    matrix_multiplication,
    transitive_closure,
)


class TestFreeSchedule:
    def test_matmul_all_ones(self):
        """Unit dependence vectors force pi_i >= 1: optimum is 1-vector."""
        for mu in (2, 4, 7):
            res = optimal_free_schedule(matrix_multiplication(mu))
            assert res.schedule.pi == (1, 1, 1)
            assert res.total_time == 3 * mu + 1

    def test_tc_optimum(self):
        """TC's D forces pi_1 >= pi_2 + pi_3 + 1: optimum [3,1,1]."""
        res = optimal_free_schedule(transitive_closure(4))
        assert res.schedule.pi == (3, 1, 1)
        assert res.total_time == 4 * 5 + 1

    def test_validity(self):
        for algo in (matrix_multiplication(3), transitive_closure(3)):
            res = optimal_free_schedule(algo)
            assert res.schedule.respects(algo)

    def test_optimality_by_sweep(self):
        """No valid schedule beats the reported free optimum."""
        from repro.core import enumerate_schedule_vectors

        algo = transitive_closure(3)
        res = optimal_free_schedule(algo)
        for pi in enumerate_schedule_vectors(algo.mu, res.schedule.f - 1):
            assert not algo.is_acyclic_under(pi)

    def test_negative_entries_usable(self):
        """Dependences with mixed signs admit schedules with negative
        components; the orthant split must find them."""
        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((3, 3)),
            dependence_matrix=((1, 0), (-1, 1)),  # d1=(1,-1), d2=(0,1)
        )
        res = optimal_free_schedule(algo)
        assert res.schedule.respects(algo)
        # (2, 1) works: d1 -> 1, d2 -> 1.  f = 9.  Check optimality class.
        assert res.schedule.f <= 9

    def test_cyclic_dependences_rejected(self):
        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((3, 3)),
            dependence_matrix=((1, -1), (0, 0)),  # d and -d: cyclic
        )
        with pytest.raises(ValueError, match="cyclic"):
            optimal_free_schedule(algo)

    def test_orthant_accounting(self):
        res = optimal_free_schedule(matrix_multiplication(2))
        # Only the all-positive orthant is feasible for D = I.
        assert res.orthants_solved == 1


class TestConflictPenalty:
    def test_matmul_penalty_formula(self):
        """penalty = mu(mu+2)+1 - (3mu+1) = mu^2 - mu at even mu."""
        for mu in (2, 4, 6):
            algo = matrix_multiplication(mu)
            assert conflict_penalty(algo, mu * (mu + 2) + 1) == mu * mu - mu

    def test_tc_penalty(self):
        algo = transitive_closure(4)
        # conflict-free optimum 29, free optimum 21.
        assert conflict_penalty(algo, 29) == 8

    def test_zero_penalty_possible(self):
        algo = matrix_multiplication(2)
        free = optimal_free_schedule(algo).total_time
        assert conflict_penalty(algo, free) == 0
