"""Regression tests pinning the batch auto-disable cutoff at 2^31.

The vectorized funnel only runs while the ring budget keeps every
candidate entry certified int64; ``_BATCH_MAX_BOUND = 2**31`` is the
gate (inclusive — a budget of exactly 2^31 still batches).  These tests
straddle the boundary with budgets of 2^31 - 1, 2^31 and 2^31 + 1 and
pin:

* batched == scalar full-result equality on either side,
* exactly-at-the-boundary budgets take the batched path,
* past-the-boundary budgets fall back to the scalar scan *visibly*
  (``SearchStats.batch_disabled_reason``, ``format_stats``, a one-time
  ``repro.*`` log warning) and still find the same winner,
* the conflict primitive's own key-range certification returns the
  ``-1`` certified-fallback sentinel exactly past int64.

The search fixture keeps huge-``mu`` runs cheap by construction: with
``n == 2``, identity dependences and one space row, ``[S; Pi]`` is
square, so the conflict stage never materializes the 2^60-point index
set — the ring at budget 2^31 holds a couple dozen candidates total.
"""

import logging

import numpy as np
import pytest

from repro.core import optimize
from repro.core.conflict import batch_distinct_image_counts
from repro.core.optimize import (
    batch_disabled_reason,
    batch_supported,
    procedure_5_1,
)
from repro.dse.progress import format_stats
from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm

BOUNDARY = 2**31
MU = 2**30

SPACE = [[1, 0]]


def boundary_algorithm() -> UniformDependenceAlgorithm:
    return UniformDependenceAlgorithm(
        index_set=ConstantBoundedIndexSet((MU, MU)),
        dependence_matrix=((1, 0), (0, 1)),
        name="boundary",
    )


def run(max_bound: int, **kwargs):
    # One ring covering [0, max_bound]: initial_bound == max_bound.
    return procedure_5_1(
        boundary_algorithm(), SPACE,
        initial_bound=max_bound, max_bound=max_bound, alpha=1, **kwargs,
    )


class TestBatchSupportedCutoff:
    @pytest.mark.parametrize("method", ["auto", "exact"])
    def test_inclusive_at_two_to_the_31(self, method):
        assert batch_supported(method, BOUNDARY - 1)
        assert batch_supported(method, BOUNDARY)
        assert not batch_supported(method, BOUNDARY + 1)

    def test_paper_method_never_batches(self):
        assert not batch_supported("paper", 10)

    def test_reason_matches_supported(self):
        for method in ("auto", "exact", "paper"):
            for bound in (BOUNDARY - 1, BOUNDARY, BOUNDARY + 1):
                reason = batch_disabled_reason(method, bound)
                assert (reason is None) == batch_supported(method, bound)

    def test_reason_texts_name_the_disqualifier(self):
        assert "paper" in batch_disabled_reason("paper", 10)
        assert "2^31" in batch_disabled_reason("auto", BOUNDARY + 1)


class TestBoundaryBudgets:
    @pytest.mark.parametrize(
        "max_bound", [BOUNDARY - 1, BOUNDARY, BOUNDARY + 1]
    )
    def test_batched_equals_scalar(self, max_bound):
        batched = run(max_bound)
        scalar = run(max_bound, batch=False)
        assert batched == scalar
        assert batched.stats == scalar.stats

    def test_below_boundary_no_winner_fits_the_budget(self):
        # Both dependences force pi >= (1, 1), whose objective is
        # exactly 2^31 — one more than this budget allows.
        result = run(BOUNDARY - 1)
        assert not result.found
        assert result.stats.batches_evaluated > 0
        assert result.stats.batch_disabled_reason is None

    def test_at_boundary_still_batched(self):
        result = run(BOUNDARY)
        assert result.found
        assert result.schedule.pi == (1, 1)
        assert result.total_time == BOUNDARY + 1
        assert result.stats.batches_evaluated > 0
        assert result.stats.batch_disabled_reason is None

    def test_past_boundary_scalar_fallback_same_winner(self):
        at = run(BOUNDARY)
        past = run(BOUNDARY + 1)
        assert past.found
        assert past.schedule.pi == at.schedule.pi == (1, 1)
        assert past.total_time == at.total_time
        # The fallback is visible, not silent.
        assert past.stats.batches_evaluated == 0
        assert "2^31" in past.stats.batch_disabled_reason


class TestFallbackVisibility:
    def test_explicit_scalar_request_reports_no_reason(self):
        result = run(BOUNDARY, batch=False)
        assert result.stats.batch_disabled_reason is None

    def test_method_paper_reports_reason(self):
        from repro.model import matrix_multiplication

        result = procedure_5_1(
            matrix_multiplication(3), [[1, 1, -1]], method="paper"
        )
        assert "paper" in result.stats.batch_disabled_reason

    def test_format_stats_surfaces_the_reason(self):
        result = run(BOUNDARY + 1)
        assert "batch disabled" in format_stats(result.stats)
        assert "2^31" in format_stats(result.stats)

    def test_reason_round_trips_to_dict(self):
        from repro.dse.progress import SearchStats

        result = run(BOUNDARY + 1)
        data = result.stats.to_dict()
        assert "2^31" in data["batch_disabled_reason"]
        rebuilt = SearchStats.from_dict(data)
        assert rebuilt.batch_disabled_reason == result.stats.batch_disabled_reason

    def test_warning_emitted_once_per_reason(self, monkeypatch, caplog):
        monkeypatch.setattr(optimize, "_warned_batch_reasons", set())
        with caplog.at_level(logging.WARNING, logger="repro.core.optimize"):
            run(BOUNDARY + 1)
            run(BOUNDARY + 1)
        warnings = [
            rec for rec in caplog.records
            if "batched candidate evaluation disabled" in rec.message
        ]
        assert len(warnings) == 1
        assert warnings[0].name.startswith("repro.")

    def test_executor_surfaces_reason_too(self):
        from repro.dse.executor import explore_schedule
        from repro.model import matrix_multiplication

        result = explore_schedule(
            matrix_multiplication(3), [[1, 1, -1]], jobs=1, method="paper"
        )
        assert "paper" in result.stats.batch_disabled_reason


class TestConflictKeyRangeCertification:
    """``batch_distinct_image_counts`` certifies per-candidate key
    ranges in Python-int arithmetic; exactly-int64 spans still count,
    one past returns the -1 sentinel (certified fallback)."""

    def test_span_at_int64_max_is_counted(self):
        imax = np.iinfo(np.int64).max
        fixed = np.empty((2, 0), dtype=np.int64)
        varying = np.array([[[0]], [[imax - 1]]], dtype=np.int64)
        assert batch_distinct_image_counts(fixed, varying).tolist() == [2]

    def test_span_past_int64_max_is_sentineled(self):
        imax = np.iinfo(np.int64).max
        fixed = np.empty((2, 0), dtype=np.int64)
        varying = np.array([[[0]], [[imax]]], dtype=np.int64)
        assert batch_distinct_image_counts(fixed, varying).tolist() == [-1]
