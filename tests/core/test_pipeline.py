"""Unit tests for repro.core.pipeline (the one-call API)."""

import pytest

from repro.core import find_time_optimal_mapping
from repro.model import (
    bit_level_matrix_multiplication,
    matrix_multiplication,
    transitive_closure,
)


class TestAutoRouting:
    def test_corank1_uses_ilp(self, matmul4):
        r = find_time_optimal_mapping(matmul4, [[1, 1, -1]])
        assert r.solver == "ilp"
        assert r.total_time == 25

    def test_corank2_uses_search(self):
        algo = bit_level_matrix_multiplication(1, 1)
        r = find_time_optimal_mapping(
            algo, [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]]
        )
        assert r.solver == "procedure-5.1"
        assert r.analysis.conflict_free

    def test_explicit_search_on_corank1(self, matmul4):
        r = find_time_optimal_mapping(matmul4, [[1, 1, -1]], solver="procedure-5.1")
        assert r.solver == "procedure-5.1"
        assert r.total_time == 25

    def test_ilp_rejected_for_corank2(self):
        algo = bit_level_matrix_multiplication(1, 1)
        with pytest.raises(ValueError, match="co-rank"):
            find_time_optimal_mapping(
                algo, [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]], solver="ilp"
            )

    def test_unknown_solver_rejected(self, matmul4):
        with pytest.raises(ValueError, match="unknown solver"):
            find_time_optimal_mapping(matmul4, [[1, 1, -1]], solver="magic")


class TestResultContents:
    def test_analysis_attached(self, matmul4):
        r = find_time_optimal_mapping(matmul4, [[1, 1, -1]])
        assert r.analysis.conflict_free
        assert r.analysis.witness is None
        assert len(r.analysis.generators) == 1

    def test_stats_by_solver(self, matmul4, tc4):
        ilp = find_time_optimal_mapping(matmul4, [[1, 1, -1]])
        assert "subproblems" in ilp.stats
        search = find_time_optimal_mapping(
            tc4, [[0, 0, 1]], solver="procedure-5.1"
        )
        assert "candidates_examined" in search.stats

    def test_total_time_property(self, tc4):
        r = find_time_optimal_mapping(tc4, [[0, 0, 1]])
        assert r.total_time == r.schedule.total_time == 29

    def test_simulate_hook(self, matmul4):
        r = find_time_optimal_mapping(matmul4, [[1, 1, -1]])
        report = r.simulate()
        assert report.ok
        assert report.makespan == r.total_time

    def test_odd_mu_fallback_path(self):
        """mu=3: the ILP vertices all fail; the pipeline must still
        return the true optimum via the search fallback (finding F3)."""
        algo = matrix_multiplication(3)
        r = find_time_optimal_mapping(algo, [[1, 1, -1]])
        assert r.total_time == 16
        assert r.analysis.conflict_free

    def test_consistency_across_mu(self):
        for mu in (2, 3, 4, 5):
            algo = transitive_closure(mu)
            r = find_time_optimal_mapping(algo, [[0, 0, 1]])
            assert r.total_time == mu * (mu + 3) + 1, f"mu={mu}"
