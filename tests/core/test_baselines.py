"""Unit tests for repro.core.baselines (the [22]/[23] comparison rows)."""

import pytest

from repro.core import (
    is_conflict_free_kernel_box,
    matmul_baseline_ref23,
    matmul_optimal_paper,
    transitive_closure_baseline_ref22,
    transitive_closure_optimal_paper,
)


class TestMatmulBaselines:
    @pytest.mark.parametrize("mu", [2, 3, 4, 6, 8])
    def test_ref23_time_formula(self, mu):
        b = matmul_baseline_ref23(mu)
        assert b.total_time == mu * (mu + 3) + 1

    @pytest.mark.parametrize("mu", [2, 4, 6, 8])
    def test_paper_time_formula(self, mu):
        b = matmul_optimal_paper(mu)
        assert b.total_time == mu * (mu + 2) + 1

    @pytest.mark.parametrize("mu", [4, 6, 8])
    def test_paper_beats_ref23_by_mu(self, mu):
        assert (
            matmul_baseline_ref23(mu).total_time
            - matmul_optimal_paper(mu).total_time
            == mu
        )

    @pytest.mark.parametrize("mu", [2, 4, 6, 8])
    def test_both_conflict_free_even_mu(self, mu):
        """The paper notes Pi_2 = [1, mu, 1] is feasible for even mu."""
        for b in (matmul_baseline_ref23(mu), matmul_optimal_paper(mu)):
            assert is_conflict_free_kernel_box(b.mapping, b.algorithm.mu), b.label

    def test_paper_mapping_conflicted_at_odd_mu(self):
        """[1, mu, 1] at odd mu has conflict vector with gcd 2 inside
        the box — the parenthetical in the appendix."""
        b = matmul_optimal_paper(3)
        assert not is_conflict_free_kernel_box(b.mapping, b.algorithm.mu)

    @pytest.mark.parametrize("mu", [2, 3, 4, 6])
    def test_dependences_respected(self, mu):
        for b in (matmul_baseline_ref23(mu), matmul_optimal_paper(mu)):
            assert b.mapping.respects_dependences(b.algorithm)

    def test_schedule_object(self):
        b = matmul_optimal_paper(4)
        s = b.schedule()
        assert s.pi == (1, 4, 1)
        assert s.total_time == 25


class TestTCBaselines:
    @pytest.mark.parametrize("mu", [2, 3, 4, 6, 8])
    def test_ref22_time_formula(self, mu):
        b = transitive_closure_baseline_ref22(mu)
        assert b.total_time == mu * (2 * mu + 3) + 1

    @pytest.mark.parametrize("mu", [2, 3, 4, 6, 8])
    def test_paper_time_formula(self, mu):
        b = transitive_closure_optimal_paper(mu)
        assert b.total_time == mu * (mu + 3) + 1

    @pytest.mark.parametrize("mu", [2, 3, 4, 8])
    def test_both_conflict_free(self, mu):
        for b in (
            transitive_closure_baseline_ref22(mu),
            transitive_closure_optimal_paper(mu),
        ):
            assert is_conflict_free_kernel_box(b.mapping, b.algorithm.mu), b.label

    @pytest.mark.parametrize("mu", [2, 3, 4])
    def test_dependences_respected(self, mu):
        for b in (
            transitive_closure_baseline_ref22(mu),
            transitive_closure_optimal_paper(mu),
        ):
            assert b.mapping.respects_dependences(b.algorithm)

    def test_asymptotic_speedup_approaches_two(self):
        ratios = [
            transitive_closure_baseline_ref22(mu).total_time
            / transitive_closure_optimal_paper(mu).total_time
            for mu in (4, 8, 16, 32)
        ]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))  # increasing
        assert ratios[-1] > 1.8

    def test_labels_and_sources(self):
        b = transitive_closure_baseline_ref22(4)
        assert "[22]" in b.label
        assert "Example 5.2" in b.source or "[22]" in b.source
