"""Unit tests for repro.core.space_optimize (Problems 6.1 / 6.2)."""

import pytest

from repro.core import (
    enumerate_space_mappings,
    enumerate_space_rows,
    is_conflict_free_kernel_box,
    solve_joint_optimal,
    solve_space_optimal,
)
from repro.model import matrix_multiplication, transitive_closure


class TestEnumeration:
    def test_rows_normalized(self):
        rows = enumerate_space_rows(3, 1)
        # 26 non-zero sign vectors collapse to 13 primitive directions.
        assert len(rows) == 13
        for r in rows:
            first = next(x for x in r if x != 0)
            assert first > 0

    def test_rows_magnitude_2_includes_non_primitive_directions(self):
        rows = enumerate_space_rows(2, 2)
        assert (2, 1) in rows
        assert (1, 2) in rows
        # (2, 2) normalizes to (1, 1): not listed separately.
        assert (2, 2) not in rows

    def test_mappings_full_rank(self):
        for space in enumerate_space_mappings(3, 2, 1):
            from repro.intlin import rank

            assert rank([list(r) for r in space]) == 2

    def test_mappings_count_1d(self):
        assert len(list(enumerate_space_mappings(3, 1, 1))) == 13


class TestProblem61:
    def test_matmul_finds_cheaper_than_paper(self):
        """Given Pi = [1,2,1] (mu=2 optimum), the space search finds a
        5-PE design — cheaper than the paper's 7-PE S = [1,1,-1]."""
        algo = matrix_multiplication(2)
        res = solve_space_optimal(algo, (1, 2, 1))
        assert res.found
        assert res.best.cost.processors == 5
        paper = [d for d in res.ranking if d.mapping.space == ((1, 1, -1),)]
        assert paper and paper[0].cost.processors == 7
        assert res.best.objective < paper[0].objective

    def test_all_ranked_designs_conflict_free(self):
        algo = matrix_multiplication(2)
        res = solve_space_optimal(algo, (1, 2, 1))
        for design in res.ranking:
            assert is_conflict_free_kernel_box(design.mapping, algo.mu)

    def test_invalid_pi_rejected(self):
        algo = matrix_multiplication(2)
        with pytest.raises(ValueError, match="Pi D"):
            solve_space_optimal(algo, (1, 0, 1))

    def test_custom_objective(self):
        algo = matrix_multiplication(2)
        res = solve_space_optimal(
            algo, (1, 2, 1), objective=lambda c: c.buffers
        )
        assert res.found
        # The winner minimizes buffers, not PEs.
        assert res.best.cost.buffers == min(d.cost.buffers for d in res.ranking)

    def test_accounting(self):
        algo = matrix_multiplication(2)
        res = solve_space_optimal(algo, (1, 2, 1))
        assert res.candidates_examined == 13
        assert (
            res.rejected_conflicts
            + res.rejected_routing
            + len([d for d in res.ranking])
            <= res.candidates_examined
        )

    def test_tc_design(self):
        algo = transitive_closure(2)
        res = solve_space_optimal(algo, (3, 1, 1))
        assert res.found
        assert is_conflict_free_kernel_box(res.best.mapping, algo.mu)

    def test_keep_ranking_limit(self):
        algo = matrix_multiplication(2)
        res = solve_space_optimal(algo, (1, 2, 1), keep_ranking=2)
        assert len(res.ranking) <= 2
        assert res.best == res.ranking[0]


class TestProblem62:
    def test_joint_matmul(self):
        algo = matrix_multiplication(2)
        res = solve_joint_optimal(algo)
        assert res.found
        best = res.best
        assert is_conflict_free_kernel_box(best.mapping, algo.mu)
        # The joint optimum is at least as good as fixing the paper's S.
        from repro.core import procedure_5_1
        from repro.systolic import evaluate_cost

        fixed = procedure_5_1(algo, [[1, 1, -1]])
        fixed_cost = evaluate_cost(algo, fixed.mapping)
        fixed_obj = fixed_cost.total_time + (
            fixed_cost.processors + fixed_cost.wire_length
        )
        assert best.objective <= fixed_obj

    def test_weights_change_winner_ordering(self):
        algo = matrix_multiplication(2)
        time_heavy = solve_joint_optimal(algo, time_weight=100.0, space_weight=0.0)
        space_heavy = solve_joint_optimal(algo, time_weight=0.0, space_weight=100.0)
        assert time_heavy.found and space_heavy.found
        # Pure-time winner achieves the global optimal t = 9.
        assert time_heavy.best.cost.total_time == 9
        # Pure-space winner has minimal PEs+wire among all designs.
        min_space = min(
            d.cost.processors + d.cost.wire_length for d in space_heavy.ranking
        )
        assert (
            space_heavy.best.cost.processors + space_heavy.best.cost.wire_length
            == min_space
        )

    def test_every_candidate_schedule_optimal_for_its_space(self):
        algo = matrix_multiplication(2)
        res = solve_joint_optimal(algo, keep_ranking=5)
        from repro.core import procedure_5_1

        for design in res.ranking[:3]:
            redo = procedure_5_1(algo, design.mapping.space)
            assert redo.total_time == design.cost.total_time
