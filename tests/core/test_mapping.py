"""Unit tests for repro.core.mapping (Definition 2.2)."""

import pytest

from repro.core import MappingError, MappingMatrix


class TestConstruction:
    def test_example_5_1(self):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        assert t.n == 3
        assert t.k == 2
        assert t.array_dimension == 1
        assert t.corank == 1

    def test_from_rows(self):
        t = MappingMatrix.from_rows([[1, 1, -1], [1, 4, 1]])
        assert t.space == ((1, 1, -1),)
        assert t.schedule == (1, 4, 1)

    def test_from_rows_empty_rejected(self):
        with pytest.raises(MappingError):
            MappingMatrix.from_rows([])

    def test_schedule_only(self):
        """k = 1: all computations on one processor."""
        t = MappingMatrix(space=(), schedule=(1, 2))
        assert t.k == 1
        assert t.array_dimension == 0
        assert t.processor((5, 5)) == ()

    def test_none_space_treated_empty(self):
        t = MappingMatrix(space=None, schedule=(1, 2))
        assert t.space == ()

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(MappingError):
            MappingMatrix(space=((1, 1),), schedule=(1, 2, 3))

    def test_empty_schedule_rejected(self):
        with pytest.raises(MappingError):
            MappingMatrix(space=(), schedule=())

    def test_coercion_to_int(self):
        import numpy as np

        t = MappingMatrix(space=(np.array([1, 1, -1]),), schedule=np.array([1, 4, 1]))
        assert t.schedule == (1, 4, 1)

    def test_with_schedule(self):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        t2 = t.with_schedule((2, 1, 4))
        assert t2.space == t.space
        assert t2.schedule == (2, 1, 4)

    def test_hashable(self):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        assert hash(t) == hash(MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1)))


class TestEvaluation:
    T = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))

    def test_tau(self):
        assert self.T.tau((2, 3, 1)) == (4, 15)

    def test_processor_and_time_split(self):
        j = (2, 3, 1)
        assert self.T.tau(j) == self.T.processor(j) + (self.T.time(j),)

    def test_tau_origin(self):
        assert self.T.tau((0, 0, 0)) == (0, 0)

    def test_rows_layout(self):
        assert self.T.rows() == [[1, 1, -1], [1, 4, 1]]


class TestConditions:
    def test_rank_full(self):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        assert t.rank() == 2
        assert t.has_full_rank()

    def test_rank_deficient(self):
        t = MappingMatrix(space=((1, 1, -1),), schedule=(2, 2, -2))
        assert t.rank() == 1
        assert not t.has_full_rank()

    def test_respects_dependences_matmul(self, matmul4):
        assert MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1)).respects_dependences(
            matmul4
        )
        assert not MappingMatrix(
            space=((1, 1, -1),), schedule=(1, 0, 1)
        ).respects_dependences(matmul4)

    def test_respects_dependences_tc(self, tc4):
        # Example 5.2's derived constraints: pi1 - pi2 - pi3 >= 1 etc.
        assert MappingMatrix(space=((0, 0, 1),), schedule=(5, 1, 1)).respects_dependences(
            tc4
        )
        assert not MappingMatrix(
            space=((0, 0, 1),), schedule=(2, 1, 1)
        ).respects_dependences(tc4)

    def test_corank_examples(self):
        # 5-D -> 2-D: T in Z^(3x5), co-rank 2.
        t = MappingMatrix(
            space=((1, 0, 1, 0, 0), (0, 1, 0, 1, 0)), schedule=(1, 1, 1, 7, 8)
        )
        assert t.corank == 2
        # square mapping: co-rank 0.
        sq = MappingMatrix(space=((1, 0), ), schedule=(0, 1))
        assert sq.corank == 0
