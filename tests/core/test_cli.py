"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_vector_parsing(self):
        from repro.cli import _parse_vector

        assert _parse_vector("1,4,1") == (1, 4, 1)
        assert _parse_vector("1, -2, 3") == (1, -2, 3)

    def test_bad_vector(self):
        import argparse

        from repro.cli import _parse_vector

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_vector("1,x,3")

    def test_matrix_parsing(self):
        from repro.cli import _parse_matrix

        assert _parse_matrix("1,0;0,1") == ((1, 0), (0, 1))
        assert _parse_matrix("1,1,-1") == ((1, 1, -1),)

    def test_ragged_matrix_rejected(self):
        import argparse

        from repro.cli import _parse_matrix

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_matrix("1,0;0,1,2")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMapCommand:
    def test_matmul(self, capsys):
        rc = main(["map", "-a", "matmul", "--mu", "4", "-s", "1,1,-1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optimal Pi     : [1, 4, 1]" in out
        assert "total time     : 25" in out

    def test_transitive_closure(self, capsys):
        rc = main(["map", "-a", "transitive-closure", "--mu", "4", "-s", "0,0,1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[5, 1, 1]" in out

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["map", "-a", "quicksort", "-s", "1,1,-1"])


class TestCheckCommand:
    def test_conflicted_mapping_exit_code(self, capsys):
        rc = main(["check", "--rows", "1,7,1,1;1,7,1,0", "--mu", "6,6,6,6"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "conflict-free  : False" in out
        assert "witness" in out

    def test_clean_mapping(self, capsys):
        rc = main(["check", "--rows", "1,1,-1;1,4,1", "--mu", "4,4,4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conflict-free  : True" in out

    def test_paper_method_selectable(self, capsys):
        rc = main(
            ["check", "--rows", "1,1,-1;1,4,1", "--mu", "4,4,4",
             "--method", "paper"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "3.1" in out

    def test_mu_arity_validated(self):
        with pytest.raises(SystemExit, match="entries"):
            main(["check", "--rows", "1,1,-1;1,4,1", "--mu", "4,4"])


class TestSimulateCommand:
    def test_clean_run(self, capsys):
        rc = main(
            ["simulate", "-a", "matmul", "--mu", "2",
             "-s", "1,1,-1", "-p", "1,2,1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict        : CLEAN" in out

    def test_defective_run(self, capsys):
        rc = main(
            ["simulate", "-a", "matmul", "--mu", "4",
             "-s", "1,1,-1", "-p", "1,1,4"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "DEFECTIVE" in out

    def test_render_flag(self, capsys):
        rc = main(
            ["simulate", "-a", "matmul", "--mu", "2",
             "-s", "1,1,-1", "-p", "1,2,1", "--render"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "PE\\t" in out


class TestDesignCommand:
    def test_matmul_design(self, capsys):
        rc = main(["design", "-a", "matmul", "--mu", "2", "-p", "1,2,1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "#1:" in out
        assert "PEs=5" in out  # the cheaper-than-paper design

    def test_no_design_found(self, capsys):
        # A schedule violating Pi D > 0 raises before searching.
        with pytest.raises(ValueError):
            main(["design", "-a", "matmul", "--mu", "2", "-p", "1,0,1"])


class TestMuParsing:
    def test_scalar_and_vector_accepted(self):
        from repro.cli import _parse_mu

        assert _parse_mu("4") == (4,)
        assert _parse_mu("3,8,2,2") == (3, 8, 2, 2)

    def test_non_positive_rejected(self):
        import argparse

        from repro.cli import _parse_mu

        for bad in ("0", "4,0,4", "-3", ""):
            with pytest.raises(argparse.ArgumentTypeError, match="--mu"):
                _parse_mu(bad)

    def test_wrong_arity_for_algorithm_is_readable(self):
        # matmul takes exactly one size.
        with pytest.raises(SystemExit, match="matmul"):
            main(["map", "-a", "matmul", "--mu", "4,4", "-s", "1,1,-1"])

    def test_convolution_accepts_pair(self, capsys):
        rc = main(["map", "-a", "convolution", "--mu", "3,8", "-s", "1,0"])
        assert rc == 0
        assert "Pi" in capsys.readouterr().out

    def test_check_broadcasts_scalar_mu(self, capsys):
        rc = main(["check", "--rows", "1,1,-1;1,4,1", "--mu", "4"])
        assert rc == 0
        assert "conflict-free" in capsys.readouterr().out

    def test_space_width_mismatch_is_readable(self):
        with pytest.raises(SystemExit, match="--space"):
            main(["map", "-a", "convolution", "--mu", "3,8", "-s", "1,1,-1"])


class TestObsCommand:
    def test_trace_flag_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import load_trace

        trace = tmp_path / "t.jsonl"
        rc = main(["map", "-a", "matmul", "--mu", "2", "-s", "1,1,-1",
                   "--trace", str(trace)])
        assert rc == 0
        assert "trace written" in capsys.readouterr().err
        records = load_trace(trace)
        assert any(
            r["type"] == "span"
            and r["name"] == "core.find_time_optimal_mapping"
            for r in records
        )

    def test_obs_report_renders(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["map", "-a", "matmul", "--mu", "2", "-s", "1,1,-1",
              "--trace", str(trace)])
        capsys.readouterr()
        rc = main(["obs", "report", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wall time" in out
        assert "core.find_time_optimal_mapping" in out

    def test_obs_validate_accepts_good_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["map", "-a", "matmul", "--mu", "2", "-s", "1,1,-1",
              "--trace", str(trace)])
        capsys.readouterr()
        rc = main(["obs", "validate", str(trace)])
        assert rc == 0
        assert "OK:" in capsys.readouterr().out

    def test_obs_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "name": "x"}\n')
        rc = main(["obs", "validate", str(bad)])
        assert rc == 1
        assert "INVALID" in capsys.readouterr().out

    def test_bad_log_level_is_readable(self):
        with pytest.raises(SystemExit, match="log"):
            main(["map", "-a", "matmul", "--mu", "2", "-s", "1,1,-1",
                  "--log-level", "LOUD"])
