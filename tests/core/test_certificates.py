"""Unit tests for repro.core.certificates (auditable optimality)."""

import dataclasses

import pytest

from repro.core import (
    Refutation,
    certify_optimality,
    verify_certificate,
)
from repro.model import matrix_multiplication


class TestCertify:
    def test_matmul_certificate(self, matmul4):
        cert = certify_optimality(matmul4, [[1, 1, -1]], (1, 4, 1))
        assert cert.optimal_time == 25
        assert len(cert.refutations) > 0
        kinds = {r.kind for r in cert.refutations}
        assert kinds <= {"dependence", "rank", "conflict"}
        assert "conflict" in kinds  # some fast schedules are conflicted
        assert "dependence" in kinds  # some violate Pi D > 0

    def test_tc_certificate(self, tc4):
        cert = certify_optimality(tc4, [[0, 0, 1]], (5, 1, 1))
        assert cert.optimal_time == 29
        assert verify_certificate(tc4, cert)

    def test_non_optimal_claim_rejected(self, matmul4):
        """Claiming [2,1,4] (t=29) optimal must fail: [1,4,1] is faster."""
        with pytest.raises(ValueError, match="not optimal"):
            certify_optimality(matmul4, [[1, 1, -1]], (2, 1, 4))

    def test_mu3_finding_f3_certified(self):
        """The mu=3 optimum t=16 carries a full certificate, settling
        finding F3 beyond the search's own bookkeeping."""
        algo = matrix_multiplication(3)
        cert = certify_optimality(algo, [[1, 1, -1]], (1, 2, 2))
        assert cert.optimal_time == 16
        assert verify_certificate(algo, cert)


class TestVerify:
    def make_cert(self, matmul4):
        return certify_optimality(matmul4, [[1, 1, -1]], (1, 4, 1))

    def test_genuine_certificate_passes(self, matmul4):
        assert verify_certificate(matmul4, self.make_cert(matmul4))

    def test_wrong_instance_rejected(self, matmul4):
        cert = self.make_cert(matmul4)
        other = matrix_multiplication(3)
        assert not verify_certificate(other, cert)

    def test_missing_refutation_rejected(self, matmul4):
        cert = self.make_cert(matmul4)
        truncated = dataclasses.replace(cert, refutations=cert.refutations[:-1])
        assert not verify_certificate(matmul4, truncated)

    def test_tampered_witness_rejected(self, matmul4):
        cert = self.make_cert(matmul4)
        tampered = []
        for r in cert.refutations:
            if r.kind == "conflict":
                j1, j2 = r.witness
                r = Refutation(pi=r.pi, kind="conflict", witness=(j1, j1))
            tampered.append(r)
        bad = dataclasses.replace(cert, refutations=tuple(tampered))
        assert not verify_certificate(matmul4, bad)

    def test_wrong_kind_rejected(self, matmul4):
        cert = self.make_cert(matmul4)
        bad_refs = tuple(
            Refutation(pi=r.pi, kind="magic", witness=r.witness)
            for r in cert.refutations
        )
        bad = dataclasses.replace(cert, refutations=bad_refs)
        assert not verify_certificate(matmul4, bad)

    def test_duplicate_refutations_rejected(self, matmul4):
        cert = self.make_cert(matmul4)
        dup = dataclasses.replace(
            cert, refutations=cert.refutations + cert.refutations[:1]
        )
        assert not verify_certificate(matmul4, dup)

    def test_conflicted_claimed_optimum_rejected(self, matmul4):
        cert = self.make_cert(matmul4)
        bad = dataclasses.replace(cert, optimal_pi=(1, 1, 4),
                                  optimal_time=25)
        assert not verify_certificate(matmul4, bad)

    def test_inconsistent_time_rejected(self, matmul4):
        cert = self.make_cert(matmul4)
        bad = dataclasses.replace(cert, optimal_time=999)
        assert not verify_certificate(matmul4, bad)


class TestAgreementWithSolvers:
    def test_certificates_for_all_solver_outputs(self):
        """Every optimum any solver reports must be certifiable."""
        from repro.core import procedure_5_1, solve_corank1_optimal

        for mu in (2, 3, 4):
            algo = matrix_multiplication(mu)
            search = procedure_5_1(algo, [[1, 1, -1]])
            cert = certify_optimality(algo, [[1, 1, -1]], search.schedule.pi)
            assert verify_certificate(algo, cert), f"search mu={mu}"
            ilp = solve_corank1_optimal(algo, [[1, 1, -1]])
            cert2 = certify_optimality(algo, [[1, 1, -1]], ilp.schedule.pi)
            assert verify_certificate(algo, cert2), f"ilp mu={mu}"
