"""Integration tests: every worked example in the paper, end to end.

Each test class reproduces one of the paper's numbered examples or
figures and asserts the exact quantities the paper prints.
"""

import numpy as np

from repro.core import (
    MappingMatrix,
    conflict_vector_corank1,
    is_conflict_free_kernel_box,
    is_feasible_conflict_vector,
    procedure_5_1,
    solve_corank1_optimal,
)
from repro.intlin import hnf, matmul as int_matmul, normalize_primitive
from repro.model import (
    ConstantBoundedIndexSet,
    matrix_multiplication,
    transitive_closure,
)
from repro.systolic import (
    plan_interconnection,
    render_space_time,
    simulate_mapping,
    verify_matmul,
)


class TestFigure1:
    """2-D index set mu = (4,4); [1,1] non-feasible, [3,5] feasible."""

    J = ConstantBoundedIndexSet((4, 4))

    def test_gamma_1_1_causes_conflicts(self):
        assert not is_feasible_conflict_vector((1, 1), self.J.mu)
        # The paper: computations [0,0], [1,1], ..., [4,4] collide.
        chain = [(i, i) for i in range(5)]
        assert all(p in self.J for p in chain)

    def test_gamma_3_5_is_feasible(self):
        assert is_feasible_conflict_vector((3, 5), self.J.mu)
        for p in self.J:
            assert tuple(a + g for a, g in zip(p, (3, 5))) not in self.J


class TestExample21:
    """The 4-D mapping T of Equation 2.8 with mu_i = 6."""

    T = MappingMatrix.from_rows([[1, 7, 1, 1], [1, 7, 1, 0]])
    J = ConstantBoundedIndexSet((6, 6, 6, 6))

    def test_gamma_1_2_3_are_conflict_vectors(self):
        from repro.intlin import matvec

        for gamma in ([0, 1, -7, 0], [7, -1, 0, 0], [1, 0, -1, 0]):
            assert matvec(self.T.rows(), gamma) == [0, 0]
            from repro.intlin import gcd_list

            assert gcd_list(gamma) == 1

    def test_gamma_1_2_feasible_gamma_3_not(self):
        assert is_feasible_conflict_vector([0, 1, -7, 0], self.J.mu)
        assert is_feasible_conflict_vector([7, -1, 0, 0], self.J.mu)
        assert not is_feasible_conflict_vector([1, 0, -1, 0], self.J.mu)

    def test_scaled_vector_not_a_conflict_vector(self):
        """[2, 0, -2, 0] solves T gamma = 0 but gcd is 2."""
        from repro.intlin import gcd_list, matvec

        v = [2, 0, -2, 0]
        assert matvec(self.T.rows(), v) == [0, 0]
        assert gcd_list(v) != 1

    def test_T_is_not_conflict_free(self):
        assert not is_conflict_free_kernel_box(self.T, self.J.mu)

    def test_paper_witness_pair(self):
        """The index points the non-feasible gamma_3 connects."""
        j1 = (0, 0, 1, 0)
        j2 = (1, 0, 0, 0)
        assert self.T.tau(j1) == self.T.tau(j2)


class TestExample42:
    """The HNF of T (Eq 2.8): H, U, V and the generator representation."""

    T = [[1, 7, 1, 1], [1, 7, 1, 0]]

    def test_hermite_shape(self):
        res = hnf(self.T)
        # Paper: H = [[1,0,0,0],[1,-1,0,0]] — the relaxed definition
        # admits sign variants; L must be lower triangular with
        # |diagonal| = (1, 1).
        assert abs(res.h[0][0]) == 1
        assert abs(res.h[1][1]) == 1
        assert res.h[0][1:] == [0, 0, 0]
        assert res.h[1][2:] == [0, 0]

    def test_u_v_inverse_pair(self):
        from repro.intlin import identity

        res = hnf(self.T)
        assert int_matmul(res.u, res.v) == identity(4)

    def test_generators_span_paper_lattice(self):
        """The paper's u_3 = [-1,0,1,0], u_4 = [-7,1,0,0] and ours must
        generate the same lattice."""
        from repro.intlin import solve_diophantine

        res = hnf(self.T)
        ours = res.kernel_columns()
        paper = [[-1, 0, 1, 0], [-7, 1, 0, 0]]
        ours_mat = [[col[i] for col in ours] for i in range(4)]
        paper_mat = [[col[i] for col in paper] for i in range(4)]
        for col in paper:
            assert solve_diophantine(ours_mat, col) is not None
        for col in ours:
            assert solve_diophantine(paper_mat, col) is not None


class TestExample31:
    """Matmul (Eq 3.4): the symbolic conflict vector of Eq 3.5."""

    def test_conflict_vector_formula(self):
        for pi in [(2, 1, 4), (1, 4, 1), (3, 2, 7)]:
            t = MappingMatrix(space=((1, 1, -1),), schedule=pi)
            expected = normalize_primitive(
                [-(pi[1] + pi[2]), pi[0] + pi[2], pi[0] - pi[1]]
            )
            assert conflict_vector_corank1(t) == expected

    def test_T_gamma_relation(self):
        """The paper notes T gamma is proportional to -d3's image...
        verify the defining property T gamma = 0 instead (exact)."""
        from repro.intlin import matvec

        t = MappingMatrix(space=((1, 1, -1),), schedule=(2, 1, 4))
        gamma = conflict_vector_corank1(t)
        assert matvec(t.rows(), gamma) == [0, 0]


class TestExample51:
    """Time-optimal matmul on a linear array, mu = 4."""

    MU = 4

    def test_optimal_time(self):
        algo = matrix_multiplication(self.MU)
        res = solve_corank1_optimal(algo, [[1, 1, -1]])
        assert res.total_time == self.MU * (self.MU + 2) + 1 == 25

    def test_paper_schedule_found(self):
        algo = matrix_multiplication(self.MU)
        res = solve_corank1_optimal(algo, [[1, 1, -1]])
        assert res.schedule.pi in ((1, 4, 1), (4, 1, 1))

    def test_pi_1_1_4_rejected_by_gcd(self):
        """The appendix: Pi_1 = [1,1,mu] has conflict vector [1,1,0]
        after normalization — non-feasible."""
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 1, 4))
        gamma = conflict_vector_corank1(t)
        assert not is_feasible_conflict_vector(gamma, (4, 4, 4))

    def test_baseline_comparison(self):
        """[23]'s Pi' = [2,1,mu]: valid, conflict-free, one mu slower."""
        algo = matrix_multiplication(self.MU)
        t23 = MappingMatrix(space=((1, 1, -1),), schedule=(2, 1, self.MU))
        assert is_conflict_free_kernel_box(t23, algo.mu)
        from repro.core import LinearSchedule

        t_base = LinearSchedule(pi=(2, 1, self.MU), index_set=algo.index_set)
        assert t_base.total_time == self.MU * (self.MU + 3) + 1 == 29

    def test_ref23_conflict_vector_formula(self):
        """gamma' = [-(mu+1), 2+mu, 1] for Pi' = [2,1,mu]."""
        t = MappingMatrix(space=((1, 1, -1),), schedule=(2, 1, self.MU))
        gamma = conflict_vector_corank1(t)
        assert gamma == normalize_primitive(
            [-(self.MU + 1), 2 + self.MU, 1]
        )

    def test_buffer_comparison(self):
        """Paper: 3 buffers for our design vs 4 for [23]'s schedule."""
        algo = matrix_multiplication(self.MU)
        ours = plan_interconnection(
            algo, MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        )
        theirs = plan_interconnection(
            algo, MappingMatrix(space=((1, 1, -1),), schedule=(2, 1, 4))
        )
        assert ours.total_buffers == 3
        assert theirs.total_buffers == 4

    def test_full_behavioral_run(self):
        rng = np.random.default_rng(11)
        a = rng.integers(0, 9, (5, 5))
        b = rng.integers(0, 9, (5, 5))
        algo = matrix_multiplication(self.MU, a=a, b=b)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        report = simulate_mapping(algo, t)
        assert report.ok
        assert report.makespan == 25
        ok, *_ = verify_matmul(report.values, a, b)
        assert ok


class TestExample52:
    """Time-optimal transitive closure, Example 5.2."""

    def test_optimal_schedule_and_time(self):
        for mu in (2, 3, 4, 6):
            algo = transitive_closure(mu)
            res = solve_corank1_optimal(algo, [[0, 0, 1]])
            assert res.schedule.pi == (mu + 1, 1, 1), f"mu={mu}"
            assert res.total_time == mu * (mu + 3) + 1, f"mu={mu}"

    def test_conflict_vector_is_paper_formula(self):
        """gamma = [1, -(mu+1), 0] for the optimal mapping."""
        mu = 4
        t = MappingMatrix(space=((0, 0, 1),), schedule=(mu + 1, 1, 1))
        assert conflict_vector_corank1(t) == [1, -(mu + 1), 0]

    def test_improvement_over_ref22(self):
        for mu in (2, 4, 8):
            ours = mu * (mu + 3) + 1
            theirs = mu * (2 * mu + 3) + 1
            assert theirs - ours == mu * mu

    def test_extreme_points_of_formulation_II(self):
        """Appendix Eq 8.2 subset II: the four extreme points listed."""
        from repro.ilp import LinearProgram, enumerate_vertices

        mu = 4
        # pi2 >= 1, pi3 >= 1, pi1-pi2-pi3 >= 1, pi1-pi2 >= 1,
        # pi1-pi3 >= 1, pi1 == mu+1.
        p = LinearProgram.build(
            [mu] * 3,
            a_ub=[
                [0, -1, 0],
                [0, 0, -1],
                [-1, 1, 1],
                [-1, 1, 0],
                [-1, 0, 1],
            ],
            b_ub=[-1, -1, -1, -1, -1],
            a_eq=[[1, 0, 0]],
            b_eq=[mu + 1],
        )
        verts = {tuple(int(x) for x in v) for v in enumerate_vertices(p)}
        expected = {
            (mu + 1, 1, 1),
            (mu + 1, 1, mu - 1),
            (mu + 1, mu - 1, 1),
        }
        assert expected <= verts

    def test_behavioral_run(self):
        mu = 4
        algo = transitive_closure(mu)
        t = MappingMatrix(space=((0, 0, 1),), schedule=(mu + 1, 1, 1))
        report = simulate_mapping(algo, t)
        assert report.ok
        assert report.makespan == mu * (mu + 3) + 1


class TestFigure3:
    def test_space_time_table_renders(self):
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        out = render_space_time(algo, t)
        # Computation 000 at PE 0 cycle 0; 444 at PE 4 cycle 24.
        assert "000" in out
        assert "444" in out
        assert len(out.splitlines()) == 14  # header + 13 PEs


class TestFindingF3:
    """Reproduction finding: the paper's mu=3 optimality claim fails."""

    def test_mu3_true_optimum_beats_ref23(self):
        algo = matrix_multiplication(3)
        res = procedure_5_1(algo, [[1, 1, -1]])
        assert res.total_time == 16  # < 19 = t([2,1,3])
        assert is_conflict_free_kernel_box(res.mapping, algo.mu)

    def test_mu3_pipeline_uses_fallback(self):
        algo = matrix_multiplication(3)
        res = solve_corank1_optimal(algo, [[1, 1, -1]])
        assert res.used_search_fallback
        assert res.total_time == 16
