"""Integration tests for repro.experiments (programmatic regeneration)."""


from repro.experiments import (
    experiment_e1_conflict_vectors,
    experiment_e2_hnf_4d,
    experiment_e3_matmul,
    experiment_e4_transitive_closure,
    experiment_e5_array_structure,
    experiment_e6_execution,
    experiment_e8_bitlevel,
    experiment_e11_space_design,
    experiment_e12_conflict_penalty,
    run_all,
    write_markdown_report,
)


class TestIndividualExperiments:
    def test_e1(self):
        data = experiment_e1_conflict_vectors()
        assert data["gamma_1_1_feasible"] is False
        assert data["gamma_3_5_feasible"] is True

    def test_e2(self):
        data = experiment_e2_hnf_4d()
        assert data["conflict_free"] is False
        assert data["gamma3_feasible"] is False
        assert len(data["generators"]) == 2

    def test_e3_shapes(self):
        rows = experiment_e3_matmul(sweep=(2, 3, 4))
        by_mu = {r["mu"]: r for r in rows}
        assert by_mu[4]["t_ours"] == 25
        assert by_mu[4]["t_ref23"] == 29
        assert by_mu[3]["t_ours"] == 16  # finding F3
        assert by_mu[3]["used_search_fallback"] is True
        for r in rows:
            assert r["t_ours"] <= r["t_ref23"]

    def test_e4_shapes(self):
        rows = experiment_e4_transitive_closure(sweep=(2, 4))
        for r in rows:
            assert r["t_ours"] == r["t_formula"]
            assert r["pi_ours"] == [r["mu"] + 1, 1, 1]
            assert r["gamma"] == [1, -(r["mu"] + 1), 0]

    def test_e5(self):
        data = experiment_e5_array_structure()
        assert data["buffers"] == [0, 3, 0]
        assert data["statically_collision_free"] is True

    def test_e6(self):
        data = experiment_e6_execution()
        assert data["makespan"] == data["expected_makespan"] == 25
        assert data["conflicts"] == 0
        assert data["result_exact"] is True

    def test_e8(self):
        rows = experiment_e8_bitlevel(sweep=((1, 1),))
        assert rows[0]["clean"] is True

    def test_e11(self):
        data = experiment_e11_space_design()
        assert data["best_processors"] == 5
        assert data["paper_processors"] == 7

    def test_e12(self):
        rows = experiment_e12_conflict_penalty(sweep=(2, 4))
        for r in rows:
            assert r["certificate_valid"] is True
            assert r["penalty"] == r["t_array"] - r["t_free"]
        by_mu = {r["mu"]: r for r in rows}
        assert by_mu[4]["penalty"] == 12  # mu^2 - mu


class TestRunAll:
    def test_quick_run(self):
        data = run_all(quick=True)
        assert set(data) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E8", "E11", "E12",
        }

    def test_markdown_report(self, tmp_path):
        out = tmp_path / "report.md"
        data = write_markdown_report(str(out), quick=True)
        text = out.read_text()
        assert text.startswith("# Regenerated experiment report")
        for key in data:
            assert f"## {key}" in text
        # The tabular experiments render as markdown tables.
        assert "| mu |" in text


class TestCLIReport:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        rc = main(["report", "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
