"""Failure-injection tests: the system must fail loudly, not wrongly.

Each test corrupts one link in the pipeline — a tampered
interconnection plan, an inconsistent mapping, a mismatched index set —
and asserts the corruption is *detected* (clean exception or defect
report), never silently absorbed into a wrong answer.
"""

import dataclasses

import pytest

from repro.core import MappingMatrix
from repro.model import matrix_multiplication
from repro.systolic import (
    plan_interconnection,
    simulate_mapping,
)


class TestTamperedPlans:
    def setup_method(self):
        self.algo = matrix_multiplication(2)
        self.t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        self.plan = plan_interconnection(self.algo, self.t)

    def test_wrong_route_direction_detected(self):
        """Flipping a route's primitive sends data to the wrong PE: the
        simulator must refuse (route endpoint != consumer)."""
        routes = list(self.plan.routes)
        # Channel 0 uses primitive column 0 (+1); column 1 is (-1).
        routes[0] = (1,)
        bad = dataclasses.replace(self.plan, routes=tuple(routes))
        with pytest.raises(RuntimeError, match="inconsistent"):
            simulate_mapping(self.algo, self.t, plan=bad)

    def test_extra_hops_detected(self):
        """A route wandering off and back passes endpoint checks only if
        it really returns; a one-sided detour must be caught."""
        routes = list(self.plan.routes)
        routes[0] = (0, 0)  # two eastward hops instead of one
        bad = dataclasses.replace(self.plan, routes=tuple(routes))
        with pytest.raises(RuntimeError, match="inconsistent"):
            simulate_mapping(self.algo, self.t, plan=bad)

    def test_detour_route_surfaces_as_late_or_collision(self):
        """A route that detours but ends correctly (east, west, east) is
        geometrically consistent; the audit must still notice the cost
        (later arrival uses more cycles than Equation 2.3 allows when
        the budget is tight)."""
        algo = self.algo
        # Schedule gives channel 0 budget Pi d1 = 1; a 3-hop detour is
        # late by construction.
        routes = list(self.plan.routes)
        routes[0] = (0, 1, 0)
        bad = dataclasses.replace(self.plan, routes=tuple(routes))
        report = simulate_mapping(algo, self.t, plan=bad)
        assert len(report.latency_violations) > 0
        assert not report.ok


class TestInconsistentInputs:
    def test_schedule_wrong_arity(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1),), schedule=(1, 2))
        with pytest.raises((ValueError, IndexError)):
            simulate_mapping(algo, t)

    def test_mu_mismatch_in_checkers(self):
        from repro.core import check_conflict_free

        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        with pytest.raises(ValueError):
            check_conflict_free(t, (4, 4))

    def test_space_optimizer_rejects_bad_pi(self):
        from repro.core import solve_space_optimal

        algo = matrix_multiplication(2)
        with pytest.raises(ValueError):
            solve_space_optimal(algo, (0, 0, 0))

    def test_certificate_for_wrong_instance_fails_closed(self):
        from repro.core import certify_optimality, verify_certificate

        algo2 = matrix_multiplication(2)
        algo3 = matrix_multiplication(3)
        cert = certify_optimality(algo2, [[1, 1, -1]], (1, 2, 1))
        assert not verify_certificate(algo3, cert)


class TestDefectReportsAreConsistent:
    def test_conflicted_mapping_defects_cross_agree(self):
        """For a conflicted mapping, every layer must agree something is
        wrong: theory says non-free, simulator reports conflicts, the
        space-time renderer refuses."""
        from repro.core import is_conflict_free_kernel_box
        from repro.systolic import render_space_time

        algo = matrix_multiplication(3)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 1, 3))
        assert not is_conflict_free_kernel_box(t, algo.mu)
        report = simulate_mapping(algo, t)
        assert len(report.conflicts) > 0
        with pytest.raises(ValueError):
            render_space_time(algo, t)

    def test_clean_mapping_no_layer_complains(self):
        from repro.core import is_conflict_free_kernel_box
        from repro.systolic import derive_io_schedule, render_space_time

        algo = matrix_multiplication(3)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 3, 2))
        if not is_conflict_free_kernel_box(t, algo.mu):
            pytest.skip("chosen schedule happens to conflict at this mu")
        report = simulate_mapping(algo, t)
        assert report.ok
        render_space_time(algo, t)  # must not raise
        io = derive_io_schedule(algo, t)
        assert io.port_conflicts() == []
