"""Scaling soak tests: the closed forms must hold across a size grid.

A regression net over problem size: for every (algorithm, mu) cell the
whole pipeline runs — solve, analyze, plan, simulate — and the paper's
closed-form predictions are asserted exactly.  Anything that silently
degrades with size (enumeration bounds, routing budgets, FIFO
accounting) trips here first.
"""

import pytest

from repro.core import (
    MappingMatrix,
    conflict_margin,
    find_time_optimal_mapping,
    optimal_free_schedule,
)
from repro.model import matrix_multiplication, transitive_closure
from repro.systolic import plan_interconnection, simulate_mapping


class TestMatmulGrid:
    @pytest.mark.parametrize("mu", [2, 4, 6, 8])
    def test_even_mu_full_pipeline(self, mu):
        algo = matrix_multiplication(mu)
        result = find_time_optimal_mapping(algo, [[1, 1, -1]])
        # Closed form.
        assert result.total_time == mu * (mu + 2) + 1
        # Simulation agrees exactly.
        report = simulate_mapping(algo, result.mapping)
        assert report.ok
        assert report.makespan == result.total_time
        assert report.num_processors == 3 * mu + 1

    @pytest.mark.parametrize("mu", [3, 5, 7])
    def test_odd_mu_beats_even_formula_neighbours(self, mu):
        """Finding F3 generalizes: at odd mu the optimum is strictly
        below the paper's mu(mu+3)+1 fallback."""
        algo = matrix_multiplication(mu)
        result = find_time_optimal_mapping(algo, [[1, 1, -1]])
        assert result.total_time < mu * (mu + 3) + 1
        report = simulate_mapping(algo, result.mapping)
        assert report.ok

    @pytest.mark.parametrize("mu", [2, 4, 6])
    def test_buffer_formula(self, mu):
        """The A-link needs mu - 1 buffers under Pi = [1, mu, 1]."""
        algo = matrix_multiplication(mu)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, mu, 1))
        plan = plan_interconnection(algo, t)
        assert plan.buffers == (0, mu - 1, 0)

    @pytest.mark.parametrize("mu", [2, 4, 6])
    def test_margin_formula(self, mu):
        """Pi = [1, mu, 1]'s conflict vector is (mu+1, -2, 1-mu):
        margin = (mu+1)/mu, shrinking toward 1 as mu grows."""
        from fractions import Fraction

        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, mu, 1))
        assert conflict_margin(t, (mu,) * 3) == Fraction(mu + 1, mu)

    @pytest.mark.parametrize("mu", [2, 4, 8])
    def test_conflict_penalty_growth(self, mu):
        algo = matrix_multiplication(mu)
        free = optimal_free_schedule(algo).total_time
        assert free == 3 * mu + 1
        array_t = find_time_optimal_mapping(algo, [[1, 1, -1]]).total_time
        assert array_t - free == mu * mu - mu


class TestTransitiveClosureGrid:
    @pytest.mark.parametrize("mu", [2, 3, 4, 6, 8])
    def test_full_pipeline(self, mu):
        algo = transitive_closure(mu)
        result = find_time_optimal_mapping(algo, [[0, 0, 1]])
        assert result.schedule.pi == (mu + 1, 1, 1)
        assert result.total_time == mu * (mu + 3) + 1
        report = simulate_mapping(algo, result.mapping)
        assert report.ok
        assert report.num_processors == mu + 1

    @pytest.mark.parametrize("mu", [2, 4, 6])
    def test_margin_is_exactly_one_step(self, mu):
        """gamma = (1, -(mu+1), 0): margin = (mu+1)/mu — the optimum
        sits one lattice step outside the box at every size."""
        from fractions import Fraction

        t = MappingMatrix(space=((0, 0, 1),), schedule=(mu + 1, 1, 1))
        assert conflict_margin(t, (mu,) * 3) == Fraction(mu + 1, mu)


class TestBitLevelGrid:
    @pytest.mark.parametrize("mu,word", [(1, 1), (2, 1), (1, 2)])
    def test_full_pipeline(self, mu, word):
        from repro.model import bit_level_matrix_multiplication

        algo = bit_level_matrix_multiplication(mu, word)
        result = find_time_optimal_mapping(
            algo, [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]]
        )
        assert result.analysis.conflict_free
        report = simulate_mapping(algo, result.mapping)
        assert report.ok
        assert report.makespan == result.total_time
