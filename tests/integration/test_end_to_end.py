"""End-to-end workflows crossing every package boundary."""

import numpy as np
import pytest

from repro import (
    Access,
    LoopNest,
    MappingMatrix,
    bit_level_matrix_multiplication,
    convolution_1d,
    find_time_optimal_mapping,
    matrix_multiplication,
    simulate_mapping,
)
from repro.core import is_conflict_free_kernel_box, prop81_columns
from repro.systolic import verify_convolution, verify_matmul


class TestLoopnestToArray:
    """Source loop nest -> (J,D) -> optimal mapping -> simulation -> values."""

    def test_fir_filter_pipeline(self):
        taps, samples = 3, 6
        nest = LoopNest(indices=("i", "k"), bounds=(samples, taps))
        structure = nest.uniformize(
            output=Access("y", ("i", "k"), variable_is_output=True),
            reads=(
                Access("y", ("i", "k-1")),
                Access("x", ("i-k",)),
                Access("w", ("k",)),
            ),
        )
        rng = np.random.default_rng(1)
        w = rng.integers(-3, 4, taps + 1)
        x = rng.integers(-3, 4, samples + taps + 1)
        algo = convolution_1d(taps, samples, weights=w, signal=x)
        assert structure.dependence_vectors() == algo.dependence_vectors()

        result = find_time_optimal_mapping(algo, space=[[1, 0]])
        report = simulate_mapping(algo, result.mapping)
        assert report.ok
        ok, *_ = verify_convolution(report.values, w, x, taps, samples)
        assert ok

    def test_matmul_from_nest(self):
        nest = LoopNest(indices=("j1", "j2", "j3"), bounds=(2, 2, 2))
        algo = nest.uniformize(
            output=Access("c", ("j1", "j2", "j3"), variable_is_output=True),
            reads=(
                Access("c", ("j1", "j2", "j3-1")),
                Access("a", ("j1", "j3")),
                Access("b", ("j3", "j2")),
            ),
        )
        # Dependence columns: (0,0,1) [c], (0,1,0) [a], (1,0,0) [b] —
        # a permutation of the library matmul's D.
        assert set(algo.dependence_vectors()) == set(
            matrix_multiplication(2).dependence_vectors()
        )


class TestBitLevelEndToEnd:
    """5-D bit-level matmul -> Theorem 4.7 -> Prop 8.1 -> 2-D simulation."""

    SPACE = [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]]

    def test_full_path(self):
        algo = bit_level_matrix_multiplication(1, 1)
        result = find_time_optimal_mapping(algo, self.SPACE)
        assert result.analysis.conflict_free

        # Prop 8.1 agrees with the winner's HNF lattice.
        try:
            prop = prop81_columns(self.SPACE, result.schedule.pi)
        except ValueError:
            prop = None  # degenerate h: closed form not applicable here
        if prop is not None:
            from repro.intlin import matvec

            rows = result.mapping.rows()
            assert matvec(rows, list(prop.u4)) == [0, 0, 0]
            assert matvec(rows, list(prop.u5)) == [0, 0, 0]

        report = simulate_mapping(algo, result.mapping)
        assert report.ok
        assert report.makespan == result.total_time

    def test_optimality_bruteforce_certificate(self):
        """No cheaper conflict-free schedule exists (tiny instance)."""
        from repro.core import enumerate_schedule_vectors

        algo = bit_level_matrix_multiplication(1, 1)
        result = find_time_optimal_mapping(algo, self.SPACE)
        best = result.schedule.f
        space_rows = tuple(tuple(r) for r in self.SPACE)
        for pi in enumerate_schedule_vectors(algo.mu, best - 1):
            if not algo.is_acyclic_under(pi):
                continue
            t = MappingMatrix(space=space_rows, schedule=pi)
            if t.rank() != 3:
                continue
            assert not is_conflict_free_kernel_box(t, algo.mu)


class TestFullMatmulStack:
    def test_search_ilp_simulation_agree(self):
        """All three roads (search, ILP, simulation) report one truth."""
        mu = 4
        rng = np.random.default_rng(0)
        a = rng.integers(0, 9, (mu + 1, mu + 1))
        b = rng.integers(0, 9, (mu + 1, mu + 1))
        algo = matrix_multiplication(mu, a=a, b=b)

        by_ilp = find_time_optimal_mapping(algo, [[1, 1, -1]], solver="ilp")
        by_search = find_time_optimal_mapping(
            algo, [[1, 1, -1]], solver="procedure-5.1"
        )
        assert by_ilp.total_time == by_search.total_time == 25

        report = simulate_mapping(algo, by_ilp.mapping)
        assert report.ok
        assert report.makespan == 25
        ok, *_ = verify_matmul(report.values, a, b)
        assert ok

    @pytest.mark.parametrize("mu", [2, 3, 4, 5])
    def test_optimal_time_formula_by_parity(self, mu):
        """Even mu: t = mu(mu+2)+1 via [1,mu,1].  Odd mu: the true
        optimum is lower than the paper's odd-mu fallback (finding F3
        at mu=3) — assert monotonicity and conflict-freedom instead."""
        algo = matrix_multiplication(mu)
        res = find_time_optimal_mapping(algo, [[1, 1, -1]])
        assert res.analysis.conflict_free
        if mu % 2 == 0:
            assert res.total_time == mu * (mu + 2) + 1
        else:
            assert res.total_time <= mu * (mu + 3) + 1


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports(self):
        import repro.core
        import repro.ilp
        import repro.intlin
        import repro.model
        import repro.systolic

        for pkg in (repro.core, repro.ilp, repro.intlin, repro.model, repro.systolic):
            for name in pkg.__all__:
                assert hasattr(pkg, name), f"{pkg.__name__}.{name}"
