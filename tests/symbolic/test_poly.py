"""Unit tests for the exact rational polynomial layer."""

from fractions import Fraction

import pytest

from repro.symbolic import RationalPoly, fit_polynomial, poly_from_samples


class TestRationalPoly:
    def test_trailing_zeros_are_trimmed(self):
        p = RationalPoly.from_coeffs([1, 2, 0, 0])
        assert p.coeffs == (Fraction(1), Fraction(2))
        assert p.degree == 1

    def test_zero_polynomial(self):
        p = RationalPoly.from_coeffs([0, 0])
        assert p.coeffs == ()
        assert p.degree == -1
        assert p(17) == 0
        assert str(p) == "0"

    def test_constant(self):
        p = RationalPoly.constant(5)
        assert p.is_constant and p(99) == 5

    def test_horner_evaluation_is_exact(self):
        # mu^2 + 2 mu + 1 at mu = 10**6 — far past float precision.
        p = RationalPoly.from_coeffs([1, 2, 1])
        m = 10**6
        assert p(m) == m * m + 2 * m + 1

    def test_eval_int_demands_integrality(self):
        half = RationalPoly.from_coeffs([Fraction(1, 2)])
        with pytest.raises(ValueError):
            half.eval_int(3)
        assert RationalPoly.from_coeffs([Fraction(1, 2), Fraction(1, 2)]).eval_int(3) == 2

    def test_serialization_round_trip(self):
        p = RationalPoly.from_coeffs([Fraction(3, 2), -1, Fraction(0), 4])
        assert RationalPoly.from_list(p.to_list()) == p

    def test_hashable_and_comparable(self):
        a = RationalPoly.from_coeffs([1, 2])
        b = RationalPoly.from_coeffs([1, 2])
        assert a == b and hash(a) == hash(b)

    def test_str_rendering(self):
        p = RationalPoly.from_coeffs([-2, 0, 1])
        assert str(p) == "mu^2 - 2"
        assert str(RationalPoly.from_coeffs([0, -1])) == "-mu"
        assert str(RationalPoly.from_coeffs([Fraction(1, 2), 1])) == "mu + 1/2"


class TestFitPolynomial:
    def test_exact_fit(self):
        points = [(m, m * m + 2 * m + 1) for m in range(1, 7)]
        p = fit_polynomial(points, 2)
        assert p == RationalPoly.from_coeffs([1, 2, 1])

    def test_mismatch_returns_none(self):
        points = [(1, 1), (2, 4), (3, 9), (4, 17)]  # last point off by one
        assert fit_polynomial(points, 2) is None

    def test_underdetermined_window_uses_lower_degree(self):
        assert fit_polynomial([(3, 7)], 2) == RationalPoly.constant(7)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            fit_polynomial([], 2)
        with pytest.raises(ValueError):
            fit_polynomial([(1, 1)], -1)
        with pytest.raises(ValueError):
            fit_polynomial([(1, 1), (1, 2)], 1)  # duplicate mu


class TestPolyFromSamples:
    def test_recovers_a_quadratic(self):
        p = poly_from_samples(lambda m: 3 * m * m - m + 2, 2)
        assert p == RationalPoly.from_coeffs([2, -1, 3])

    def test_rejects_non_polynomial(self):
        with pytest.raises(ValueError):
            poly_from_samples(lambda m: 2**m, 2)
