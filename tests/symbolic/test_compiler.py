"""Unit tests for the symbolic compiler, its cache, and pipeline routing."""

import json
from fractions import Fraction

import pytest

from repro.core.optimize import procedure_5_1
from repro.core.pipeline import find_time_optimal_mapping
from repro.dse.cache import ResultCache
from repro.model import (
    ConstantBoundedIndexSet,
    UniformDependenceAlgorithm,
    convolution_1d,
    matrix_multiplication,
)
from repro.symbolic import (
    AlgorithmFamily,
    CompileError,
    RationalPoly,
    SymbolicSolution,
    ValidityInterval,
    compile_schedule,
    family_from_algorithm,
    load_or_compile,
    schedule_compile_params,
    solution_cache_key,
)

SPACE = [[1, 1, -1]]


class TestAlgorithmFamily:
    def test_family_from_algorithm_round_trips_any_size(self):
        family = family_from_algorithm(matrix_multiplication(7))
        algo = family.algorithm(3)
        assert algo.index_set.mu == (3, 3, 3)
        assert (
            algo.dependence_matrix
            == matrix_multiplication(3).dependence_matrix
        )

    def test_non_uniform_bounds_are_rejected(self):
        with pytest.raises(CompileError):
            family_from_algorithm(convolution_1d(2, 5))

    def test_nonpositive_size_is_rejected(self):
        family = family_from_algorithm(matrix_multiplication(3))
        with pytest.raises(CompileError):
            family.algorithm(0)

    def test_family_building_non_uniform_is_caught(self):
        family = AlgorithmFamily(
            name="broken",
            build=lambda m: UniformDependenceAlgorithm(
                index_set=ConstantBoundedIndexSet((m, m + 1)),
                dependence_matrix=((1, 0), (0, 1)),
            ),
        )
        with pytest.raises(CompileError):
            family.algorithm(2)

    def test_size_varying_dependence_is_rejected(self):
        family = AlgorithmFamily(
            name="shifty",
            build=lambda m: UniformDependenceAlgorithm(
                index_set=ConstantBoundedIndexSet((m, m)),
                dependence_matrix=((1, m % 2), (0, 1)),
            ),
        )
        with pytest.raises(CompileError):
            compile_schedule(family, [[1, 0]], mu_range=(1, 4))


class TestCompileSchedule:
    def test_matmul_winner_is_polynomial_above_mu_3(self):
        family = family_from_algorithm(matrix_multiplication(3))
        solution = compile_schedule(family, SPACE, mu_range=(1, 12))
        tail = solution.intervals[-1]
        assert (tail.lo, tail.hi) == (4, 12)
        assert [str(p) for p in tail.pi] == ["1", "2", "mu - 1"]
        assert str(tail.total_time) == "mu^2 + 2*mu + 1"

    def test_certificate_metadata_is_honest(self):
        family = family_from_algorithm(matrix_multiplication(3))
        solution = compile_schedule(family, SPACE, mu_range=(2, 9))
        assert solution.samples > 0
        assert solution.compile_seconds > 0
        assert solution.coverage == 8
        for interval in solution.intervals:
            assert interval.lo in interval.verified
            assert interval.hi in interval.verified

    def test_bad_range_is_rejected(self):
        family = family_from_algorithm(matrix_multiplication(3))
        with pytest.raises(CompileError):
            compile_schedule(family, SPACE, mu_range=(0, 5))
        with pytest.raises(CompileError):
            compile_schedule(family, SPACE, mu_range=(6, 5))

    def test_json_round_trip_preserves_answers(self):
        family = family_from_algorithm(matrix_multiplication(3))
        solution = compile_schedule(family, SPACE, mu_range=(1, 9))
        rebuilt = SymbolicSolution.from_dict(
            json.loads(json.dumps(solution.to_dict()))
        )
        for mu in range(1, 10):
            assert rebuilt.eval(mu) == solution.eval(mu)


class TestSolutionEval:
    def fractional_solution(self):
        # A hand-built record whose expression is non-integral at mu=3:
        # eval must refuse (return None) rather than round.
        half = RationalPoly.from_coeffs([0, Fraction(1, 2)])
        interval = ValidityInterval(
            2, 4, True, pi=(half,), total_time=half, verified=(2, 4)
        )
        return SymbolicSolution(
            task="schedule", family="f", mu_lo=2, mu_hi=4,
            params={}, intervals=(interval,),
        )

    def test_non_integral_evaluation_decertifies(self):
        solution = self.fractional_solution()
        assert solution.eval(2) is not None
        assert solution.eval(3) is None

    def test_not_found_interval_answers_found_false(self):
        interval = ValidityInterval(1, 5, False, verified=(1, 5))
        solution = SymbolicSolution(
            task="schedule", family="f", mu_lo=1, mu_hi=5,
            params={}, intervals=(interval,),
        )
        answer = solution.eval(3)
        assert answer is not None and not answer.found

    def test_gaps_and_out_of_range_return_none(self):
        interval = ValidityInterval(
            1, 3, True,
            pi=(RationalPoly.constant(1),),
            total_time=RationalPoly.constant(2),
            verified=(1, 3),
        )
        solution = SymbolicSolution(
            task="schedule", family="f", mu_lo=1, mu_hi=9,
            params={}, intervals=(interval,),
        )
        assert solution.eval(2) is not None
        assert solution.eval(5) is None      # gap
        assert solution.eval(10) is None     # past mu_hi
        assert solution.eval(0) is None      # below mu_lo


class TestSolutionCache:
    def params(self, mu_range=(1, 9)):
        return schedule_compile_params(
            matrix_multiplication(3).dependence_matrix.tolist(),
            SPACE, mu_range=mu_range,
        )

    def test_load_or_compile_round_trips(self, tmp_path):
        family = family_from_algorithm(matrix_multiplication(3))
        cache = ResultCache(tmp_path)
        fn = lambda: compile_schedule(family, SPACE, mu_range=(1, 9))
        first, compiled_1 = load_or_compile(fn, self.params(), cache)
        second, compiled_2 = load_or_compile(fn, self.params(), cache)
        assert compiled_1 is True and compiled_2 is False
        assert second.intervals == first.intervals
        assert second.eval(7) == first.eval(7)

    def test_key_separates_ranges_and_spaces(self):
        base = solution_cache_key(self.params())
        assert solution_cache_key(self.params((1, 12))) != base
        other = schedule_compile_params(
            matrix_multiplication(3).dependence_matrix.tolist(),
            [[0, 1, -1]],
        )
        assert solution_cache_key(other) != base

    def test_malformed_cache_entry_recompiles(self, tmp_path):
        family = family_from_algorithm(matrix_multiplication(3))
        cache = ResultCache(tmp_path)
        key = solution_cache_key(self.params())
        cache.put(key, {"nonsense": True})
        solution, compiled = load_or_compile(
            lambda: compile_schedule(family, SPACE, mu_range=(1, 9)),
            self.params(), cache,
        )
        assert compiled is True
        assert solution.eval(5) is not None


class TestPipelineRouting:
    def test_symbolic_route_equals_enumeration(self):
        algo = matrix_multiplication(8)
        symbolic = find_time_optimal_mapping(algo, SPACE, mu="symbolic")
        direct = find_time_optimal_mapping(algo, SPACE, solver="procedure-5.1")
        assert symbolic.solver == "symbolic"
        assert symbolic.schedule.pi == direct.schedule.pi
        assert symbolic.total_time == direct.total_time
        assert symbolic.analysis.conflict_free
        assert symbolic.stats["samples"] > 0

    def test_symbolic_route_uses_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = find_time_optimal_mapping(
            matrix_multiplication(8), SPACE, mu="symbolic", cache=cache
        )
        second = find_time_optimal_mapping(
            matrix_multiplication(6), SPACE, mu="symbolic",
            mu_range=(1, 8), cache=cache,
        )
        assert first.stats["compiled"] is True
        assert second.stats["compiled"] is False
        assert second.total_time == procedure_5_1(
            matrix_multiplication(6), SPACE
        ).total_time

    def test_out_of_range_falls_back_to_enumeration(self):
        result = find_time_optimal_mapping(
            matrix_multiplication(9), SPACE, mu="symbolic", mu_range=(1, 6)
        )
        assert result.solver != "symbolic"
        assert result.total_time == procedure_5_1(
            matrix_multiplication(9), SPACE
        ).total_time

    def test_integer_mu_resizes_the_algorithm(self):
        result = find_time_optimal_mapping(
            matrix_multiplication(9), SPACE, mu=4, solver="procedure-5.1"
        )
        assert result.algorithm.index_set.mu == (4, 4, 4)
        assert result.total_time == procedure_5_1(
            matrix_multiplication(4), SPACE
        ).total_time

    def test_bad_mu_value_is_rejected(self):
        with pytest.raises(ValueError):
            find_time_optimal_mapping(
                matrix_multiplication(4), SPACE, mu="parametric"
            )
