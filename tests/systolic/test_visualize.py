"""Unit tests for repro.systolic.visualize (Figures 1-3 renderings)."""

import pytest

from repro.core import MappingMatrix
from repro.model import ConstantBoundedIndexSet, matrix_multiplication
from repro.systolic import (
    plan_interconnection,
    render_array_diagram,
    render_index_set_2d,
    render_space_time,
)


class TestFigure1:
    J = ConstantBoundedIndexSet((4, 4))

    def test_nonfeasible_vector_marks_points(self):
        out = render_index_set_2d(self.J, [(1, 1)])
        # Multiples of (1,1) inside the lattice get the digit 1.
        assert "1" in out.splitlines()[1]  # top row contains (4,4)
        assert "non-feasible" in out

    def test_feasible_vector_marks_nothing(self):
        out = render_index_set_2d(self.J, [(3, 5)])
        assert "(feasible)" in out
        grid_lines = out.splitlines()[1 : 1 + 5]
        marked = sum(line.count("1") for line in grid_lines)
        # Row labels contain digits; check no cell labels by counting
        # the marker past the label column.
        assert all("1" not in line[4:] for line in grid_lines)
        _ = marked

    def test_both_paper_vectors(self):
        out = render_index_set_2d(self.J, [(1, 1), (3, 5)])
        assert "gamma_1 = (1, 1)" in out
        assert "gamma_2 = (3, 5)" in out

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            render_index_set_2d(ConstantBoundedIndexSet((2, 2, 2)), [])

    def test_grid_dimensions(self):
        out = render_index_set_2d(self.J, [])
        lines = out.splitlines()
        assert len([l for l in lines if l.strip()]) >= 6  # header + 5 rows


class TestFigure2:
    def test_matmul_diagram(self):
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        plan = plan_interconnection(algo, t)
        out = render_array_diagram(
            t, plan, channel_names=["B", "A", "C"], num_processors=5
        )
        assert out.count("[PE]") == 5
        assert "buffers=3" in out  # the A link
        assert "<--" in out  # C travels westward
        assert "-->" in out

    def test_default_channel_names(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        plan = plan_interconnection(algo, t)
        out = render_array_diagram(t, plan)
        assert "d1" in out and "d3" in out

    def test_local_channel_annotated(self):
        from repro.model import transitive_closure

        algo = transitive_closure(2)
        t = MappingMatrix(space=((0, 0, 1),), schedule=(3, 1, 1))
        plan = plan_interconnection(algo, t)
        out = render_array_diagram(t, plan)
        assert "(local)" in out  # d2 = (0,1,0) has S d2 = 0

    def test_requires_linear_array(self):
        t = MappingMatrix(
            space=((1, 0, 1, 0, 0), (0, 1, 0, 1, 0)), schedule=(1, 1, 2, 4, 8)
        )
        from repro.model import bit_level_matrix_multiplication

        algo = bit_level_matrix_multiplication(1, 1)
        plan = plan_interconnection(algo, t)
        with pytest.raises(ValueError, match="linear"):
            render_array_diagram(t, plan)


class TestFigure3:
    def test_matmul_table(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        out = render_space_time(algo, t)
        lines = out.splitlines()
        assert lines[0].startswith("PE\\t")
        # All 27 computations appear exactly once.
        body = "\n".join(lines[1:])
        count = sum(
            1
            for j1 in range(3)
            for j2 in range(3)
            for j3 in range(3)
            if f"{j1}{j2}{j3}" in body
        )
        assert count == 27

    def test_conflicted_mapping_rejected(self):
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 1, 4))
        with pytest.raises(ValueError, match="conflict"):
            render_space_time(algo, t)

    def test_width_guard(self):
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        with pytest.raises(ValueError, match="wide"):
            render_space_time(algo, t, max_width=10)

    def test_requires_linear_array(self):
        from repro.model import bit_level_matrix_multiplication

        algo = bit_level_matrix_multiplication(1, 1)
        t = MappingMatrix(
            space=((1, 0, 1, 0, 0), (0, 1, 0, 1, 0)), schedule=(1, 1, 2, 4, 8)
        )
        with pytest.raises(ValueError, match="linear"):
            render_space_time(algo, t)

    def test_cell_count_matches_makespan(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        out = render_space_time(algo, t)
        header = out.splitlines()[0]
        # Columns span exactly t = 1 + 2(1+2+1) = 9 cycles: 0..8.
        assert " 0" in header and " 8" in header


class TestArray2DFloorplan:
    def make_2d_array(self):
        from repro.model import bit_level_matrix_multiplication
        from repro.systolic import build_array, plan_interconnection

        algo = bit_level_matrix_multiplication(1, 1)
        t = MappingMatrix(
            space=((1, 0, 1, 0, 0), (0, 1, 0, 1, 0)), schedule=(1, 1, 2, 4, 8)
        )
        plan = plan_interconnection(algo, t)
        return build_array(algo, t, plan)

    def test_renders(self):
        from repro.systolic import render_array_2d

        array = self.make_2d_array()
        out = render_array_2d(array)
        assert "[" in out
        assert f"({array.num_processors} PEs" in out

    def test_grid_dimensions(self):
        from repro.systolic import render_array_2d

        array = self.make_2d_array()
        out = render_array_2d(array)
        # 3x3 PE grid -> 3 grid rows + 1 legend line.
        assert len(out.splitlines()) == 4

    def test_requires_2d(self):
        from repro.systolic import build_array, plan_interconnection, render_array_2d

        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        plan = plan_interconnection(algo, t)
        array = build_array(algo, t, plan)
        with pytest.raises(ValueError, match="2-D"):
            render_array_2d(array)
