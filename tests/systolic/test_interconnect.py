"""Unit tests for repro.systolic.interconnect (Def 2.2 condition 2)."""

import pytest

from repro.core import MappingMatrix
from repro.model import matrix_multiplication, transitive_closure
from repro.systolic import (
    RoutingError,
    nearest_neighbor_primitives,
    plan_interconnection,
)


class TestPrimitives:
    def test_dim1(self):
        assert nearest_neighbor_primitives(1) == [[1, -1]]

    def test_dim2_matches_paper(self):
        """The paper's P = [[0,0,1,-1],[1,-1,0,0]] up to column order."""
        p = nearest_neighbor_primitives(2)
        cols = {tuple(p[r][c] for r in range(2)) for c in range(4)}
        assert cols == {(0, 1), (0, -1), (1, 0), (-1, 0)}

    def test_dim0(self):
        assert nearest_neighbor_primitives(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            nearest_neighbor_primitives(-1)


class TestPlanMatmul:
    """Example 5.1 / Figure 2: T = [[1,1,-1],[1,4,1]]."""

    def setup_method(self):
        self.algo = matrix_multiplication(4)
        self.t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        self.plan = plan_interconnection(self.algo, self.t)

    def test_sd_pk_identity(self):
        """S D == P K exactly."""
        from repro.intlin import matmul

        s = [list(r) for r in self.t.space]
        d = [list(r) for r in self.algo.dependence_matrix]
        p = [list(r) for r in self.plan.primitives]
        k = [list(r) for r in self.plan.usage]
        assert matmul(s, d) == matmul(p, k)

    def test_figure2_buffers(self):
        """Three buffers on the A link (d2), none elsewhere."""
        assert self.plan.buffers == (0, 3, 0)
        assert self.plan.total_buffers == 3

    def test_hop_counts(self):
        assert [self.plan.hops(i) for i in range(3)] == [1, 1, 1]

    def test_equation_2_3(self):
        """sum_j k_ji <= Pi d_i for every dependence."""
        for i, d in enumerate(self.algo.dependence_vectors()):
            assert self.plan.hops(i) <= self.t.time(d)

    def test_statically_collision_free(self):
        assert self.plan.statically_collision_free()

    def test_usage_columns_shape(self):
        cols = self.plan.usage_columns()
        assert len(cols) == 3
        assert all(len(c) == 2 for c in cols)  # r = 2 primitives in 1-D


class TestPlanTC:
    """Example 5.2: T = [[0,0,1],[5,1,1]]."""

    def setup_method(self):
        self.algo = transitive_closure(4)
        self.t = MappingMatrix(space=((0, 0, 1),), schedule=(5, 1, 1))
        self.plan = plan_interconnection(self.algo, self.t)

    def test_displacements(self):
        """S D = [1, 0, -1, 0, -1] (paper, Example 5.2)."""
        from repro.intlin import matvec

        s = [list(self.t.space[0])]
        disp = [
            matvec(s, list(d))[0] for d in self.algo.dependence_vectors()
        ]
        assert disp == [1, 0, -1, 0, -1]

    def test_buffer_budget(self):
        for i, d in enumerate(self.algo.dependence_vectors()):
            assert self.plan.buffers[i] == self.t.time(d) - self.plan.hops(i)
            assert self.plan.buffers[i] >= 0

    def test_statically_collision_free(self):
        assert self.plan.statically_collision_free()


class TestRoutingErrors:
    def test_budget_too_tight(self):
        """A displacement farther than the schedule allows must fail."""
        algo = matrix_multiplication(2)
        # S d1 = 5 but Pi d1 = 1: cannot make 5 hops in 1 cycle.
        t = MappingMatrix(space=((5, 0, 0),), schedule=(1, 1, 1))
        with pytest.raises(RoutingError):
            plan_interconnection(algo, t)

    def test_no_links_with_displacement(self):
        """A 0-D array cannot transport a non-zero displacement...
        but S is empty so displacements are empty: planning succeeds."""
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=(), schedule=(1, 2, 5))
        plan = plan_interconnection(algo, t)
        assert plan.routes == ((), (), ())

    def test_unreachable_with_given_primitives(self):
        """Primitives that only move east cannot realize a westward hop."""
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        with pytest.raises(RoutingError):
            plan_interconnection(algo, t, primitives=[[1]])

    def test_wrong_primitive_rows(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        with pytest.raises(ValueError, match="rows"):
            plan_interconnection(algo, t, primitives=[[1, -1], [0, 0]])

    def test_nonpositive_schedule_length(self):
        from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm

        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((2, 2)),
            dependence_matrix=((1,), (0,)),
        )
        t = MappingMatrix(space=((0, 1),), schedule=(0, 1))  # Pi d = 0
        with pytest.raises(RoutingError, match="non-positive"):
            plan_interconnection(algo, t)


class TestCustomPrimitives:
    def test_long_range_primitive_used(self):
        """A machine with a jump-by-2 link routes in fewer hops."""
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((2, 1, -1),), schedule=(2, 1, 1))
        plan = plan_interconnection(
            algo, t, primitives=[[1, -1, 2, -2]]
        )
        # d1 displacement 2: one jump-2 hop instead of two unit hops.
        assert plan.hops(0) == 1

    def test_2d_plan(self):
        """5-D bit-level mapping onto a 2-D nearest-neighbor array."""
        from repro.model import bit_level_matrix_multiplication

        algo = bit_level_matrix_multiplication(1, 1)
        t = MappingMatrix(
            space=((1, 0, 1, 0, 0), (0, 1, 0, 1, 0)),
            schedule=(1, 1, 2, 4, 8),
        )
        plan = plan_interconnection(algo, t)
        assert len(plan.routes) == 5
        for i, d in enumerate(algo.dependence_vectors()):
            assert plan.hops(i) <= t.time(d)


class TestSingleUsePreference:
    def test_single_use_preferred_when_affordable(self):
        """With a jump-2 primitive available AND unit primitives, a
        displacement of 2 with a generous budget routes as one jump-2
        hop or two unit hops; the single-use preference must pick a
        decomposition with every primitive used at most once."""
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((2, 1, -1),), schedule=(3, 1, 1))
        plan = plan_interconnection(algo, t, primitives=[[1, -1, 2, -2]])
        assert plan.statically_collision_free()

    def test_fallback_when_single_use_infeasible(self):
        """Only unit primitives and displacement 2: single-use is
        impossible, so the planner falls back to the repeated-hop
        route (and the static criterion correctly flags it)."""
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((2, 1, -1),), schedule=(3, 1, 1))
        plan = plan_interconnection(algo, t, primitives=[[1, -1]])
        assert plan.hops(0) == 2
        assert not plan.statically_collision_free()
