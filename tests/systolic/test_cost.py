"""Unit tests for repro.systolic.cost (the VLSI cost model)."""


from repro.core import MappingMatrix
from repro.model import matrix_multiplication, transitive_closure
from repro.systolic import evaluate_cost, processor_count, wire_length


class TestProcessorCount:
    def test_matmul_linear(self):
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        # j1 + j2 - j3 over [0,4]^3 covers [-4, 8]: 13 PEs.
        assert processor_count(algo, t) == 13

    def test_tc_linear(self):
        algo = transitive_closure(4)
        t = MappingMatrix(space=((0, 0, 1),), schedule=(5, 1, 1))
        assert processor_count(algo, t) == 5

    def test_zero_d(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=(), schedule=(1, 3, 9))
        assert processor_count(algo, t) == 1

    def test_sparse_image(self):
        """A row with stride 2 leaves holes: count actual PEs, not span."""
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((2, 0, 0),), schedule=(1, 1, 1))
        assert processor_count(algo, t) == 3  # {0, 2, 4}


class TestWireLength:
    def test_matmul_channels(self):
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        length = wire_length(algo, t)
        # Links actually traversed: each channel's producers are the
        # index points with an in-set consumer (one coordinate capped at
        # mu - 1), whose PE image spans 12 positions: 3 channels x 12.
        assert length == 3 * 12

    def test_local_channel_contributes_nothing(self):
        algo = transitive_closure(4)
        t = MappingMatrix(space=((0, 0, 1),), schedule=(5, 1, 1))
        length = wire_length(algo, t)
        # d2 = (0,1,0) has S d2 = 0: a PE-local channel, no wire.
        from repro.systolic import plan_interconnection

        plan = plan_interconnection(algo, t)
        assert plan.hops(1) == 0
        nonlocal_channels = sum(1 for i in range(5) if plan.hops(i) > 0)
        # Each non-local channel's producer PEs span 4 positions
        # (the consumer constraint caps one coordinate at mu - 1).
        assert length == nonlocal_channels * 4


class TestEvaluate:
    def test_full_sheet(self):
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        cost = evaluate_cost(algo, t)
        assert cost.processors == 13
        assert cost.buffers == 3
        assert cost.total_time == 25
        assert cost.wire_length == 36

    def test_combined_default_weights(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        cost = evaluate_cost(algo, t)
        assert cost.combined() == cost.processors + cost.wire_length

    def test_combined_custom_weights(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        cost = evaluate_cost(algo, t)
        assert cost.combined(
            processor_weight=0, wire_weight=0, buffer_weight=1, time_weight=1
        ) == cost.buffers + cost.total_time

    def test_smaller_design_costs_less(self):
        """The CLI demo's observation: S = [0,1,-1] beats [1,1,-1]."""
        algo = matrix_multiplication(2)
        small = evaluate_cost(
            algo, MappingMatrix(space=((0, 1, -1),), schedule=(1, 2, 1))
        )
        paper = evaluate_cost(
            algo, MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        )
        assert small.processors < paper.processors
        assert small.combined() < paper.combined()
