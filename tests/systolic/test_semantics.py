"""Unit tests for repro.systolic.semantics (functional verification)."""

import numpy as np
import pytest

from repro.core import MappingMatrix
from repro.model import convolution_1d, matrix_multiplication
from repro.systolic import (
    extract_convolution_result,
    extract_matmul_result,
    reference_transitive_closure,
    simulate_mapping,
    verify_convolution,
    verify_matmul,
)


class TestMatmulSemantics:
    def run(self, mu, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.integers(-5, 6, (mu + 1, mu + 1))
        b = rng.integers(-5, 6, (mu + 1, mu + 1))
        algo = matrix_multiplication(mu, a=a, b=b)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, mu, 1))
        report = simulate_mapping(algo, t)
        return a, b, report

    def test_exact_product_mu2(self):
        a, b, report = self.run(2)
        ok, sim, ref = verify_matmul(report.values, a, b)
        assert ok

    def test_exact_product_mu4(self):
        a, b, report = self.run(4)
        ok, sim, ref = verify_matmul(report.values, a, b)
        assert ok

    def test_negative_entries(self):
        a, b, report = self.run(4, seed=99)
        ok, *_ = verify_matmul(report.values, a, b)
        assert ok

    def test_extract_reads_final_slice(self):
        a, b, report = self.run(2)
        c = extract_matmul_result(report.values, 2)
        assert c.shape == (3, 3)
        assert np.array_equal(c, a @ b)

    def test_result_independent_of_schedule(self):
        """Two different conflict-free schedules compute the same C."""
        rng = np.random.default_rng(5)
        a = rng.integers(0, 9, (5, 5))
        b = rng.integers(0, 9, (5, 5))
        algo = matrix_multiplication(4, a=a, b=b)
        for pi in ((1, 4, 1), (4, 1, 1), (2, 1, 4)):
            t = MappingMatrix(space=((1, 1, -1),), schedule=pi)
            report = simulate_mapping(algo, t)
            ok, *_ = verify_matmul(report.values, a, b)
            assert ok, pi


class TestConvolutionSemantics:
    def test_exact_filter(self):
        taps, samples = 3, 8
        rng = np.random.default_rng(2)
        w = rng.integers(-4, 5, taps + 1)
        x = rng.integers(-4, 5, samples + taps + 1)
        algo = convolution_1d(taps, samples, weights=w, signal=x)
        t = MappingMatrix(space=((1, 0),), schedule=(1, 1))
        report = simulate_mapping(algo, t)
        assert report.ok
        ok, sim, ref = verify_convolution(report.values, w, x, taps, samples)
        assert ok

    def test_extract_shape(self):
        taps, samples = 2, 5
        w = np.ones(taps + 1, dtype=int)
        x = np.arange(samples + taps + 1)
        algo = convolution_1d(taps, samples, weights=w, signal=x)
        t = MappingMatrix(space=((1, 0),), schedule=(1, 1))
        report = simulate_mapping(algo, t)
        y = extract_convolution_result(report.values, taps, samples)
        assert y.shape == (samples + 1,)

    def test_moving_sum(self):
        """All-ones weights: y[i] = sum of a window of x."""
        taps, samples = 2, 4
        w = np.ones(taps + 1, dtype=int)
        x = np.arange(samples + taps + 1)
        algo = convolution_1d(taps, samples, weights=w, signal=x)
        t = MappingMatrix(space=((1, 0),), schedule=(1, 1))
        report = simulate_mapping(algo, t)
        ok, sim, ref = verify_convolution(report.values, w, x, taps, samples)
        assert ok
        # y[i] = x[i+taps] + x[i+taps-1] + x[i+taps-2] (shifted window).
        assert sim[0] == x[2] + x[1] + x[0]


class TestWarshall:
    def test_reflexive_closure_of_chain(self):
        adj = np.array(
            [[1, 1, 0], [0, 1, 1], [0, 0, 1]], dtype=bool
        )
        closure = reference_transitive_closure(adj)
        assert closure[0, 2]  # 0 -> 1 -> 2

    def test_disconnected_stays_disconnected(self):
        adj = np.eye(4, dtype=bool)
        closure = reference_transitive_closure(adj)
        assert np.array_equal(closure, np.eye(4, dtype=bool))

    def test_cycle_fully_connects(self):
        n = 5
        adj = np.zeros((n, n), dtype=bool)
        for i in range(n):
            adj[i, (i + 1) % n] = True
        closure = reference_transitive_closure(adj)
        assert closure.all()

    def test_idempotent(self):
        rng = np.random.default_rng(3)
        adj = rng.random((6, 6)) < 0.3
        c1 = reference_transitive_closure(adj)
        c2 = reference_transitive_closure(c1)
        assert np.array_equal(c1, c2)

    def test_matches_matrix_power_semantics(self):
        rng = np.random.default_rng(4)
        adj = rng.random((5, 5)) < 0.4
        closure = reference_transitive_closure(adj)
        # Reachability via boolean matrix powers of (I | A).
        reach = np.eye(5, dtype=bool) | adj
        for _ in range(5):
            reach = reach | (reach @ reach)
        expected = reach | adj
        # closure includes adj and all compositions, but not I unless given.
        assert np.array_equal(closure | np.eye(5, dtype=bool), expected | np.eye(5, dtype=bool))

    def test_input_not_mutated(self):
        adj = np.array([[1, 1], [0, 1]], dtype=bool)
        original = adj.copy()
        reference_transitive_closure(adj)
        assert np.array_equal(adj, original)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            reference_transitive_closure(np.ones((2, 3), dtype=bool))


class TestLUSemantics:
    def run(self, mu, seed=0, pi=None):
        from repro.model import lu_decomposition

        rng = np.random.default_rng(seed)
        a = rng.integers(-3, 4, (mu + 1, mu + 1)) + np.eye(mu + 1, dtype=int) * 20
        algo = lu_decomposition(mu, a=a)
        t = MappingMatrix(
            space=((1, 1, -1),), schedule=pi or (1, mu if mu % 2 == 0 else 2, mu - 1 if mu % 2 else 1)
        )
        report = simulate_mapping(algo, t)
        return a, report

    def test_exact_factorization_mu2(self):
        from repro.systolic import verify_lu

        a, report = self.run(2)
        ok, l_mat, u_mat = verify_lu(report.values, a)
        assert ok

    def test_exact_factorization_mu3(self):
        from repro.systolic import verify_lu

        a, report = self.run(3, pi=(1, 2, 2))
        assert report.ok  # (1,2,2) is the conflict-free mu=3 optimum
        ok, *_ = verify_lu(report.values, a)
        assert ok

    def test_l_unit_lower_u_upper(self):
        from fractions import Fraction

        from repro.systolic import extract_lu_result

        a, report = self.run(2)
        l_mat, u_mat = extract_lu_result(report.values, 2)
        for i in range(3):
            assert l_mat[i][i] == Fraction(1)
            for j in range(i + 1, 3):
                assert l_mat[i][j] == Fraction(0)
            for j in range(i):
                assert u_mat[i][j] == Fraction(0)

    def test_zero_pivot_raises(self):
        from repro.model import lu_decomposition

        a = np.zeros((3, 3), dtype=int)
        algo = lu_decomposition(2, a=a)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        with pytest.raises(ZeroDivisionError, match="pivot"):
            simulate_mapping(algo, t)

    def test_matches_numpy_lu_via_reconstruction(self):
        """Cross-check against scipy's LU on the same matrix (values
        compared through reconstruction, since pivoting differs)."""
        from repro.systolic import verify_lu

        a, report = self.run(4, seed=7)
        ok, l_mat, u_mat = verify_lu(report.values, a)
        assert ok
        dense_l = np.array([[float(x) for x in row] for row in l_mat])
        dense_u = np.array([[float(x) for x in row] for row in u_mat])
        assert np.allclose(dense_l @ dense_u, a)

    def test_shape_validation(self):
        from repro.model import lu_decomposition

        with pytest.raises(ValueError, match="shape"):
            lu_decomposition(2, a=np.eye(5))
