"""Unit tests for repro.systolic.netlist (structural array export)."""

import json

import pytest

from repro.core import MappingMatrix
from repro.model import matrix_multiplication, transitive_closure
from repro.systolic import build_netlist, plan_interconnection


class TestMatmulNetlist:
    def setup_method(self):
        self.algo = matrix_multiplication(2)
        self.t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        self.nl = build_netlist(self.algo, self.t)

    def test_pe_count(self):
        assert len(self.nl.cells_of_kind("pe")) == 7

    def test_fifo_count_matches_buffered_channel_links(self):
        """Channel A (index 1) has 1 buffer per link; 6 producer PEs."""
        fifos = self.nl.cells_of_kind("fifo")
        assert all(f.params["channel"] == 1 for f in fifos)
        assert len(fifos) == 6

    def test_fifo_depth_matches_plan(self):
        plan = plan_interconnection(self.algo, self.t)
        for f in self.nl.cells_of_kind("fifo"):
            assert f.params["depth"] == plan.buffers[f.params["channel"]]

    def test_validates(self):
        self.nl.validate()  # must not raise

    def test_boundary_ports_present(self):
        # One injection port per (channel, boundary port PE).
        assert len(self.nl.boundary_ports) > 0
        assert all(p.startswith("in_ch") for p in self.nl.boundary_ports)

    def test_buffered_channel_nets_pass_through_fifo(self):
        """On the buffered channel every PE-to-PE connection is split
        into PE -> FIFO -> PE."""
        fifo_names = {c.name for c in self.nl.cells_of_kind("fifo")}
        ch1_nets = [
            n for n in self.nl.nets
            if n.channel == 1 and not n.source.startswith("in_")
        ]
        for net in ch1_nets:
            assert net.source in fifo_names or net.target in fifo_names


class TestExports:
    def make(self):
        algo = transitive_closure(2)
        t = MappingMatrix(space=((0, 0, 1),), schedule=(3, 1, 1))
        return build_netlist(algo, t)

    def test_json_roundtrip(self):
        nl = self.make()
        doc = json.loads(nl.to_json())
        assert set(doc) == {"cells", "nets", "boundary_ports"}
        assert len(doc["cells"]) == len(nl.cells)
        assert len(doc["nets"]) == len(nl.nets)

    def test_json_stable(self):
        nl = self.make()
        assert nl.to_json() == nl.to_json()

    def test_dot_output(self):
        nl = self.make()
        dot = nl.to_dot()
        assert dot.startswith("digraph array {")
        assert dot.rstrip().endswith("}")
        for c in nl.cells_of_kind("pe"):
            assert c.name in dot
        assert "ch0" in dot

    def test_without_boundary_ports(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        nl = build_netlist(algo, t, include_boundary=False)
        assert nl.boundary_ports == ()
        nl.validate()


class TestValidation:
    def test_dangling_net_detected(self):
        from repro.systolic.netlist import Cell, Net, Netlist

        nl = Netlist(
            cells=(Cell(name="pe_0", kind="pe"),),
            nets=(Net(name="n0", channel=0, source="pe_0", target="ghost"),),
            boundary_ports=(),
        )
        with pytest.raises(ValueError, match="unknown target"):
            nl.validate()

    def test_duplicate_cells_detected(self):
        from repro.systolic.netlist import Cell, Netlist

        nl = Netlist(
            cells=(Cell(name="pe_0", kind="pe"), Cell(name="pe_0", kind="pe")),
            nets=(),
            boundary_ports=(),
        )
        with pytest.raises(ValueError, match="duplicate"):
            nl.validate()

    def test_zero_d_netlist(self):
        from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm

        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((2, 2)),
            dependence_matrix=((1, 0), (0, 1)),
        )
        t = MappingMatrix(space=(), schedule=(1, 3))
        nl = build_netlist(algo, t)
        assert len(nl.cells_of_kind("pe")) == 1


class TestParetoFrontier:
    def test_matmul_frontier(self):
        from repro.core import pareto_frontier

        algo = matrix_multiplication(2)
        front = pareto_frontier(algo)
        assert len(front) >= 2
        # No design dominates another within the frontier.
        def metrics(d):
            return (
                d.cost.total_time,
                d.cost.processors,
                d.cost.wire_length,
                d.cost.buffers,
            )

        for a in front:
            for b in front:
                if a is b:
                    continue
                ma, mb = metrics(a), metrics(b)
                assert not (
                    all(x >= y for x, y in zip(ma, mb)) and ma != mb
                )

    def test_frontier_contains_time_optimum(self):
        from repro.core import pareto_frontier

        algo = matrix_multiplication(2)
        front = pareto_frontier(algo)
        best_time = min(d.cost.total_time for d in front)
        # The global time optimum (t = 9) must be represented.
        assert best_time == 9

    def test_frontier_sorted_by_time(self):
        from repro.core import pareto_frontier

        algo = matrix_multiplication(2)
        front = pareto_frontier(algo)
        times = [d.cost.total_time for d in front]
        assert times == sorted(times)
