"""Unit tests for repro.systolic.array (the physical array model)."""

from repro.core import MappingMatrix
from repro.model import matrix_multiplication, transitive_closure
from repro.systolic import build_array, plan_interconnection


def make_array(algo, space, pi):
    t = MappingMatrix(space=space, schedule=pi)
    plan = plan_interconnection(algo, t)
    return build_array(algo, t, plan), t, plan


class TestLinearArray:
    def test_matmul_pe_range(self):
        algo = matrix_multiplication(4)
        array, _t, _p = make_array(algo, ((1, 1, -1),), (1, 4, 1))
        # S j = j1 + j2 - j3 over [0,4]^3: range [-4, 8].
        assert array.num_processors == 13
        assert array.extent() == ((-4, 8),)

    def test_tc_pe_range(self):
        algo = transitive_closure(4)
        array, _t, _p = make_array(algo, ((0, 0, 1),), (5, 1, 1))
        assert array.num_processors == 5
        assert array.extent() == ((0, 4),)

    def test_links_per_channel(self):
        algo = matrix_multiplication(2)
        array, _t, _p = make_array(algo, ((1, 1, -1),), (1, 2, 1))
        # Each dependence has its own channel (Figure 2's three links).
        channels = {link.channel for link in array.links}
        assert channels == {0, 1, 2}

    def test_link_geometry_unit_steps(self):
        algo = matrix_multiplication(2)
        array, _t, _p = make_array(algo, ((1, 1, -1),), (1, 2, 1))
        for link in array.links:
            step = link.target[0] - link.source[0]
            assert abs(step) == 1

    def test_c_channel_direction_westward(self):
        """Figure 2: the C stream travels right to left (S d3 = -1)."""
        algo = matrix_multiplication(2)
        array, _t, _p = make_array(algo, ((1, 1, -1),), (1, 2, 1))
        c_links = list(array.links_by_channel(2))
        assert c_links
        assert all(l.target[0] - l.source[0] == -1 for l in c_links)

    def test_processors_sorted_unique(self):
        algo = matrix_multiplication(2)
        array, _t, _p = make_array(algo, ((1, 1, -1),), (1, 2, 1))
        assert list(array.processors) == sorted(set(array.processors))


class TestTwoDArray:
    def test_bitlevel_geometry(self):
        from repro.model import bit_level_matrix_multiplication

        algo = bit_level_matrix_multiplication(1, 1)
        array, _t, _p = make_array(
            algo,
            ((1, 0, 1, 0, 0), (0, 1, 0, 1, 0)),
            (1, 1, 2, 4, 8),
        )
        assert array.dimension == 2
        # S j: (j1+j4, j2+j5) over {0,1}^5: coordinates 0..2 each.
        assert array.num_processors == 9
        assert array.extent() == ((0, 2), (0, 2))

    def test_2d_links_are_axis_aligned(self):
        from repro.model import bit_level_matrix_multiplication

        algo = bit_level_matrix_multiplication(1, 1)
        array, _t, _p = make_array(
            algo,
            ((1, 0, 1, 0, 0), (0, 1, 0, 1, 0)),
            (1, 1, 2, 4, 8),
        )
        for link in array.links:
            dx = link.target[0] - link.source[0]
            dy = link.target[1] - link.source[1]
            assert abs(dx) + abs(dy) == 1  # nearest-neighbor hops only


class TestZeroDArray:
    def test_single_pe(self):
        from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm

        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((2, 2)),
            dependence_matrix=((1, 0), (0, 1)),
        )
        array, _t, _p = make_array(algo, (), (1, 3))
        assert array.dimension == 0
        assert array.num_processors == 1
        assert array.extent() == ()
        assert array.links == ()
