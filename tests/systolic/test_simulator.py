"""Unit tests for repro.systolic.simulator (the behavioral referee)."""

import numpy as np
import pytest

from repro.core import MappingMatrix
from repro.model import matrix_multiplication, transitive_closure
from repro.systolic import simulate_mapping, verify_matmul


class TestMatmulExample51:
    """Figure 3: the full behavioral reproduction."""

    def setup_method(self):
        rng = np.random.default_rng(1)
        self.a = rng.integers(0, 9, (5, 5))
        self.b = rng.integers(0, 9, (5, 5))
        self.algo = matrix_multiplication(4, a=self.a, b=self.b)
        self.t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        self.report = simulate_mapping(self.algo, self.t)

    def test_clean_run(self):
        assert self.report.ok
        assert self.report.conflicts == ()
        assert self.report.link_collisions == ()
        assert self.report.latency_violations == ()

    def test_makespan_is_equation_2_7(self):
        assert self.report.makespan == 4 * (4 + 2) + 1 == 25

    def test_computation_count(self):
        assert self.report.num_computations == 125

    def test_processor_count(self):
        # S j over J ranges over [-4, 8]: 13 PEs.
        assert self.report.num_processors == 13

    def test_functional_result(self):
        ok, sim, ref = verify_matmul(self.report.values, self.a, self.b)
        assert ok
        assert np.array_equal(sim, self.a @ self.b)

    def test_buffer_occupancy_matches_plan(self):
        """Dynamic peak FIFO occupancy equals the planned buffer depth
        for the A channel (3) and zero for B and C."""
        assert self.report.max_buffer_occupancy == (0, 3, 0)
        assert self.report.plan.buffers == (0, 3, 0)

    def test_utilization_sane(self):
        assert 0 < self.report.utilization <= 1
        assert self.report.utilization == pytest.approx(125 / (13 * 25))


class TestConflictDetection:
    def test_conflicted_mapping_reported(self):
        """Pi = [1,1,4] has the in-box conflict vector [1,-1,0]: the
        simulator must observe actual collisions."""
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 1, 4))
        report = simulate_mapping(algo, t)
        assert not report.ok
        assert len(report.conflicts) > 0
        c = report.conflicts[0]
        assert len(c.points) >= 2
        # The colliding points genuinely map to the same (PE, time).
        for p in c.points:
            assert t.processor(p) == c.processor
            assert t.time(p) == c.time

    def test_conflict_count_matches_theory(self):
        """Number of lost slots = |J| - |distinct tau images|."""
        algo = matrix_multiplication(3)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 1, 3))
        report = simulate_mapping(algo, t)
        images = {t.tau(j) for j in algo.index_set}
        overcommit = len(algo.index_set) - len(images)
        assert sum(len(c.points) - 1 for c in report.conflicts) == overcommit


class TestTransitiveClosureExample52:
    def test_paper_optimum_clean(self):
        algo = transitive_closure(4)
        t = MappingMatrix(space=((0, 0, 1),), schedule=(5, 1, 1))
        report = simulate_mapping(algo, t)
        assert report.ok
        assert report.makespan == 4 * (4 + 3) + 1 == 29

    def test_ref22_baseline_clean_but_slower(self):
        algo = transitive_closure(4)
        t = MappingMatrix(space=((0, 0, 1),), schedule=(9, 1, 1))
        report = simulate_mapping(algo, t)
        assert report.ok
        assert report.makespan == 4 * (2 * 4 + 3) + 1 == 45

    def test_processors_match_space_image(self):
        algo = transitive_closure(3)
        t = MappingMatrix(space=((0, 0, 1),), schedule=(4, 1, 1))
        report = simulate_mapping(algo, t)
        assert report.num_processors == 4  # S j = j3 in 0..3


class TestFunctionalControls:
    def test_functional_requires_semantics(self):
        algo = matrix_multiplication(2)  # no compute attached
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        with pytest.raises(ValueError, match="compute"):
            simulate_mapping(algo, t, functional=True)

    def test_functional_skipped_on_request(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, (3, 3))
        algo = matrix_multiplication(2, a=a, b=a)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        report = simulate_mapping(algo, t, functional=False)
        assert report.values is None

    def test_auto_detect(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        report = simulate_mapping(algo, t)
        assert report.values is None


class TestPlanReuse:
    def test_explicit_plan_accepted(self):
        from repro.systolic import plan_interconnection

        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        plan = plan_interconnection(algo, t)
        report = simulate_mapping(algo, t, plan=plan)
        assert report.plan is plan


class TestZeroDArray:
    def test_single_processor_mapping(self):
        """k = 1: everything on one PE; conflict-freedom forces a
        schedule injective on J."""
        from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm

        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((2, 2)),
            dependence_matrix=((1, 0), (0, 1)),
        )
        t = MappingMatrix(space=(), schedule=(1, 3))  # injective on 3x3 box
        report = simulate_mapping(algo, t)
        assert report.ok
        assert report.num_processors == 1
        assert report.makespan == 1 + 2 * 1 + 2 * 3


class TestLinkCollisions:
    def test_multi_hop_route_collides_as_paper_predicts(self):
        """The appendix criterion: data using a link channel more than
        once can collide.  A displacement-2 dependence (two hops on the
        same channel) meets single-hop traffic from a neighbor PE: the
        simulator must observe the collision and the static criterion
        must flag it."""
        from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm

        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((3, 3)),
            dependence_matrix=((1, 0), (0, 1)),
        )
        t = MappingMatrix(space=((2, 1),), schedule=(3, 1))
        report = simulate_mapping(algo, t)
        assert report.plan.hops(0) == 2
        assert not report.plan.statically_collision_free()
        assert len(report.link_collisions) > 0

    def test_static_criterion_implies_dynamic_clean(self):
        """When every K column uses each primitive at most once (the
        paper's sufficient criterion) the simulator sees no collisions —
        checked on both worked examples and a 2-D mapping."""
        from repro.model import bit_level_matrix_multiplication

        cases = [
            (matrix_multiplication(4), ((1, 1, -1),), (1, 4, 1)),
            (transitive_closure(4), ((0, 0, 1),), (5, 1, 1)),
            (
                bit_level_matrix_multiplication(1, 1),
                ((1, 0, 1, 0, 0), (0, 1, 0, 1, 0)),
                (1, 1, 2, 4, 8),
            ),
        ]
        for algo, space, pi in cases:
            t = MappingMatrix(space=space, schedule=pi)
            report = simulate_mapping(algo, t)
            if report.plan.statically_collision_free():
                assert report.link_collisions == (), algo.name


class TestHopPolicies:
    def test_policies_agree_for_single_hop_plans(self):
        """Single-hop channels with zero slack: both policies identical."""
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        eager = simulate_mapping(algo, t, hop_policy="eager")
        lazy = simulate_mapping(algo, t, hop_policy="lazy")
        assert eager.ok and lazy.ok
        assert eager.makespan == lazy.makespan

    def test_lazy_moves_waiting_to_source(self):
        """With slack, lazy tokens wait at the source PE: the same
        queues appear with the same peaks, relocated upstream by the
        channel's space displacement ``S d``."""
        algo = matrix_multiplication(4)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        eager = simulate_mapping(algo, t, hop_policy="eager")
        lazy = simulate_mapping(algo, t, hop_policy="lazy")
        assert eager.max_buffer_occupancy[1] == 3
        assert lazy.max_buffer_occupancy[1] == 3
        d = algo.dependence_vectors()[1]
        shift = sum(s * dv for s, dv in zip(t.space[0], d))
        eager_peaks = {pe: p for ch, pe, p in eager.fifo_peaks if ch == 1}
        lazy_peaks = {pe: p for ch, pe, p in lazy.fifo_peaks if ch == 1}
        assert lazy_peaks == {
            (pe[0] - shift,): p for pe, p in eager_peaks.items()
        }

    def test_both_policies_satisfy_eq_2_3_on_worked_examples(self):
        """Equation 2.3 (one time unit per primitive hop) holds for both
        forwarding disciplines on Examples 5.1 and 5.2, and neither
        discipline changes what the array computes or when."""
        cases = [
            (matrix_multiplication(4), ((1, 1, -1),), (1, 4, 1)),
            (transitive_closure(4), ((0, 0, 1),), (5, 1, 1)),
        ]
        for algo, space, pi in cases:
            t = MappingMatrix(space=space, schedule=pi)
            eager = simulate_mapping(algo, t, hop_policy="eager")
            lazy = simulate_mapping(algo, t, hop_policy="lazy")
            for report in (eager, lazy):
                assert report.ok, algo.name
                assert report.latency_violations == (), algo.name
            assert eager.makespan == lazy.makespan
            assert eager.num_processors == lazy.num_processors
            # Total queued-token mass is policy independent; only the
            # side of the link where tokens wait differs.
            assert eager.max_buffer_occupancy == lazy.max_buffer_occupancy

    def test_unknown_policy_rejected(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        with pytest.raises(ValueError, match="hop_policy"):
            simulate_mapping(algo, t, hop_policy="random")

    def test_latency_audit_same_under_both(self):
        """Equation 2.3 violations are policy-independent facts."""
        import dataclasses

        from repro.systolic import plan_interconnection

        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        plan = plan_interconnection(algo, t)
        routes = list(plan.routes)
        routes[0] = (0, 1, 0)  # detour: 3 hops in a 1-cycle budget
        bad = dataclasses.replace(plan, routes=tuple(routes))
        eager = simulate_mapping(algo, t, plan=bad, hop_policy="eager")
        lazy = simulate_mapping(algo, t, plan=bad, hop_policy="lazy")
        assert len(eager.latency_violations) == len(lazy.latency_violations) > 0
