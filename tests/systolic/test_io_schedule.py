"""Unit tests for repro.systolic.io_schedule (boundary data skewing)."""


from repro.core import MappingMatrix
from repro.model import matrix_multiplication, transitive_closure
from repro.systolic import derive_io_schedule, render_injection_profile


class TestMatmulIO:
    """Figure 3's implicit I/O: skewed A, B injection and C drain."""

    def setup_method(self):
        self.algo = matrix_multiplication(2)
        self.t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        self.io = derive_io_schedule(self.algo, self.t)

    def test_injection_counts(self):
        # Each channel's boundary consumers: one face of the cube,
        # (mu+1)^2 = 9 points each.
        for channel in range(3):
            assert len(self.io.injections_by_channel(channel)) == 9

    def test_drain_counts(self):
        for channel in range(3):
            assert len(self.io.drains_by_channel(channel)) == 9

    def test_no_port_conflicts(self):
        assert self.io.port_conflicts() == []

    def test_injection_timing_precedes_consumption(self):
        for e in self.io.injections:
            consume_t = self.t.time(e.point)
            assert e.time <= consume_t
            # Exactly hops earlier.
            hops = 1  # all matmul channels are single-hop here
            assert consume_t - e.time == hops

    def test_injection_port_is_upstream(self):
        """The port is one primitive step behind the consumer's PE,
        against the channel's travel direction."""
        deps = self.algo.dependence_vectors()
        for e in self.io.injections:
            pe = self.t.processor(e.point)
            s_d = self.t.processor(deps[e.channel])
            assert e.port == tuple(p - s for p, s in zip(pe, s_d))

    def test_drain_points_have_no_successor(self):
        deps = self.algo.dependence_vectors()
        for e in self.io.drains:
            succ = tuple(a + b for a, b in zip(e.point, deps[e.channel]))
            assert succ not in self.algo.index_set

    def test_c_drain_at_final_slice(self):
        """The C results (channel 2) drain at j3 = mu."""
        for e in self.io.drains_by_channel(2):
            assert e.point[2] == 2


class TestLocalChannelIO:
    def test_zero_hop_channel_injects_at_own_pe(self):
        algo = transitive_closure(2)
        t = MappingMatrix(space=((0, 0, 1),), schedule=(3, 1, 1))
        io = derive_io_schedule(algo, t)
        # d2 = (0,1,0) has S d2 = 0: port == consumer PE, time == consume.
        for e in io.injections_by_channel(1):
            assert e.port == t.processor(e.point)
            assert e.time == t.time(e.point)


class TestConflictedMappingIO:
    def test_port_conflicts_surface_for_conflicted_mapping(self):
        """A mapping with computational conflicts also shows I/O port
        contention (two consumers needing one port-cycle)."""
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 1, 2))
        io = derive_io_schedule(algo, t)
        assert len(io.port_conflicts()) > 0


class TestRendering:
    def test_profile_renders(self):
        algo = matrix_multiplication(2)
        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        io = derive_io_schedule(algo, t)
        out = render_injection_profile(io, 1)
        assert "channel 1" in out
        assert "#" in out

    def test_empty_channel_message(self):
        from repro.systolic.io_schedule import IOSchedule

        empty = IOSchedule(injections=(), drains=())
        assert "no boundary injections" in render_injection_profile(empty, 0)
