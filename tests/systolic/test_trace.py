"""Unit tests for repro.systolic.trace (execution trace export)."""


from repro.core import MappingMatrix
from repro.model import matrix_multiplication, stencil_2d
from repro.systolic import derive_trace, simulate_mapping


class TestTraceDerivation:
    def setup_method(self):
        self.algo = matrix_multiplication(2)
        self.t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 2, 1))
        self.trace = derive_trace(self.algo, self.t)

    def test_compute_event_per_index_point(self):
        assert len(self.trace.computes()) == len(self.algo.index_set)

    def test_compute_events_match_mapping(self):
        for e in self.trace.computes():
            assert e.location == self.t.processor(e.payload)
            assert e.cycle == self.t.time(e.payload)

    def test_transfer_count_matches_in_set_edges(self):
        expected = 0
        for j in self.algo.index_set:
            for d in self.algo.dependence_vectors():
                pred = tuple(a - b for a, b in zip(j, d))
                if pred in self.algo.index_set:
                    expected += 1  # single-hop routes: one transfer each
        assert len(self.trace.transfers()) == expected

    def test_events_cycle_ordered(self):
        cycles = [e.cycle for e in self.trace.events]
        assert cycles == sorted(cycles)

    def test_makespan_agrees_with_simulation(self):
        report = simulate_mapping(self.algo, self.t)
        compute_cycles = [e.cycle for e in self.trace.computes()]
        assert max(compute_cycles) - min(compute_cycles) + 1 == report.makespan

    def test_busy_processors_unique_when_conflict_free(self):
        for cycle in range(self.trace.first_cycle, self.trace.last_cycle + 1):
            busy = self.trace.busy_processors(cycle)
            computes_now = [
                e for e in self.trace.computes() if e.cycle == cycle
            ]
            assert len(busy) == len(computes_now)  # injective placement

    def test_transfers_skippable(self):
        bare = derive_trace(self.algo, self.t, include_transfers=False)
        assert bare.transfers() == []
        assert len(bare.computes()) == len(self.algo.index_set)


class TestExports:
    def make(self):
        algo = stencil_2d(2)
        t = MappingMatrix(space=((0, 1, 0),), schedule=(3, 0, -1))
        return derive_trace(algo, t), algo

    def test_csv_shape(self):
        trace, algo = self.make()
        lines = trace.to_csv().splitlines()
        assert lines[0] == "cycle,kind,location,payload"
        assert len(lines) == 1 + len(trace.events)

    def test_csv_parseable(self):
        import csv
        import io

        trace, _algo = self.make()
        rows = list(csv.DictReader(io.StringIO(trace.to_csv())))
        assert len(rows) == len(trace.events)
        kinds = {r["kind"] for r in rows}
        assert kinds <= {"compute", "transfer"}

    def test_vcd_structure(self):
        trace, _algo = self.make()
        vcd = trace.to_vcd()
        assert vcd.startswith("$timescale")
        assert "$enddefinitions $end" in vcd
        assert vcd.count("$var string") == trace.num_processors
        # One timestamp marker per cycle in range.
        span = trace.last_cycle - trace.first_cycle + 1
        assert vcd.count("#") >= span


class TestStencilZoo:
    def test_structure(self):
        algo = stencil_2d(3)
        assert algo.n == 3
        assert algo.m == 5
        assert algo.mu == (3, 3, 3)

    def test_custom_sweeps(self):
        algo = stencil_2d(3, time_steps=5)
        assert algo.mu == (5, 3, 3)

    def test_schedule_must_weight_sweep_axis(self):
        algo = stencil_2d(3)
        # Pure spatial schedules violate the neighbor dependences.
        assert not algo.is_acyclic_under((0, 1, 1))
        assert algo.is_acyclic_under((3, 1, 1))

    def test_mappable(self):
        from repro.core import is_conflict_free_kernel_box, procedure_5_1

        algo = stencil_2d(2)
        res = procedure_5_1(algo, [[0, 1, 0]])
        assert res.found
        assert is_conflict_free_kernel_box(res.mapping, algo.mu)

    def test_simulates_clean(self):
        from repro.core import procedure_5_1

        algo = stencil_2d(2)
        res = procedure_5_1(algo, [[0, 1, 0]])
        report = simulate_mapping(algo, res.mapping)
        assert report.ok
        assert report.makespan == res.total_time
