"""Shared fixtures and hypothesis configuration for the test-suite."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A moderate default profile: these are exact-arithmetic algorithms, so
# a modest number of examples already exercises the interesting shapes;
# the property files opt into more examples where it pays.
settings.register_profile(
    "default",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


@pytest.fixture
def rng() -> random.Random:
    """Seeded stdlib RNG for deterministic randomized tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def np_rng() -> np.random.Generator:
    """Seeded NumPy RNG for deterministic numerical tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def matmul4():
    """The paper's Example 5.1 algorithm instance (mu = 4)."""
    from repro.model import matrix_multiplication

    return matrix_multiplication(4)


@pytest.fixture
def tc4():
    """The paper's Example 5.2 algorithm instance (mu = 4)."""
    from repro.model import transitive_closure

    return transitive_closure(4)


@pytest.fixture
def paper_T_example21():
    """The mapping matrix of Example 2.1 / Equation 2.8."""
    from repro.core import MappingMatrix

    return MappingMatrix.from_rows([[1, 7, 1, 1], [1, 7, 1, 0]])
