"""Unit tests for repro.ilp.problem (the LP/ILP container)."""

import pytest

from repro.ilp import LinearProgram, LPSolution


class TestBuild:
    def test_minimal(self):
        p = LinearProgram.build([1.0, 2.0])
        assert p.num_vars == 2
        assert p.a_ub.shape == (0, 2)
        assert p.a_eq.shape == (0, 2)
        assert p.bounds == [(None, None), (None, None)]
        assert p.integer.all()

    def test_full(self):
        p = LinearProgram.build(
            [1, 1],
            a_ub=[[1, 0]],
            b_ub=[5],
            a_eq=[[1, 1]],
            b_eq=[3],
            bounds=[(0, None), (0, 10)],
            integer=[True, False],
            names=["x", "y"],
        )
        assert p.a_ub.shape == (1, 2)
        assert p.names == ["x", "y"]
        assert p.integer.tolist() == [True, False]

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError):
            LinearProgram.build([1, 1], a_ub=[[1, 0]], b_ub=[1, 2])

    def test_eq_count_mismatch(self):
        with pytest.raises(ValueError):
            LinearProgram.build([1, 1], a_eq=[[1, 0], [0, 1]], b_eq=[1])

    def test_bounds_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearProgram.build([1, 1], bounds=[(0, 1)])

    def test_integer_mask_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearProgram.build([1, 1], integer=[True])


class TestMutation:
    def test_with_extra_ub(self):
        p = LinearProgram.build([1, 1], a_ub=[[1, 0]], b_ub=[5])
        p2 = p.with_extra_ub([0, 1], 7)
        assert p2.a_ub.shape == (2, 2)
        assert p.a_ub.shape == (1, 2)  # original untouched

    def test_with_bounds_tightens(self):
        p = LinearProgram.build([1], bounds=[(0, 10)])
        p2 = p.with_bounds(0, 2, 8)
        assert p2.bounds == [(2, 8)]

    def test_with_bounds_keeps_tighter_original(self):
        p = LinearProgram.build([1], bounds=[(5, 6)])
        p2 = p.with_bounds(0, 0, 10)
        assert p2.bounds == [(5, 6)]

    def test_with_bounds_none_passthrough(self):
        p = LinearProgram.build([1], bounds=[(1, None)])
        p2 = p.with_bounds(0, None, 4)
        assert p2.bounds == [(1, 4)]


class TestFeasibility:
    P = LinearProgram.build(
        [1, 1],
        a_ub=[[1, 1]],
        b_ub=[4],
        a_eq=[[1, -1]],
        b_eq=[0],
        bounds=[(0, None), (0, None)],
    )

    def test_feasible_point(self):
        assert self.P.is_feasible_point([2, 2])

    def test_ub_violation(self):
        assert not self.P.is_feasible_point([3, 3])

    def test_eq_violation(self):
        assert not self.P.is_feasible_point([1, 2])

    def test_bound_violation(self):
        assert not self.P.is_feasible_point([-1, -1])

    def test_tolerance(self):
        assert self.P.is_feasible_point([2 + 1e-9, 2 + 1e-9])


class TestLPSolution:
    def test_ok(self):
        s = LPSolution(status="optimal", x=(1.0, 2.0), objective=3.0)
        assert s.ok
        assert s.x_int() == (1, 2)

    def test_not_ok(self):
        s = LPSolution(status="infeasible", x=None, objective=None)
        assert not s.ok
        with pytest.raises(ValueError):
            s.x_int()

    def test_x_int_rejects_fractional(self):
        s = LPSolution(status="optimal", x=(1.5,), objective=1.5)
        with pytest.raises(ValueError, match="not integral"):
            s.x_int()

    def test_x_int_snaps_near_integral(self):
        s = LPSolution(status="optimal", x=(2.0 + 1e-9,), objective=2.0)
        assert s.x_int() == (2,)
