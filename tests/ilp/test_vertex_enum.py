"""Unit tests for repro.ilp.vertex_enum (the appendix technique)."""

from fractions import Fraction

import pytest

from repro.ilp import (
    LinearProgram,
    all_vertices_integral,
    best_integral_vertex,
    enumerate_vertices,
    solve_ilp,
)


def frac_tuple(*vals):
    return tuple(Fraction(v) for v in vals)


class TestEnumerate:
    def test_unit_square(self):
        p = LinearProgram.build([1, 1], bounds=[(0, 1), (0, 1)])
        verts = set(enumerate_vertices(p))
        assert verts == {
            frac_tuple(0, 0),
            frac_tuple(0, 1),
            frac_tuple(1, 0),
            frac_tuple(1, 1),
        }

    def test_triangle(self):
        # x, y >= 0, x + y <= 2.
        p = LinearProgram.build(
            [1, 1], a_ub=[[1, 1]], b_ub=[2], bounds=[(0, None), (0, None)]
        )
        verts = set(enumerate_vertices(p))
        assert verts == {frac_tuple(0, 0), frac_tuple(2, 0), frac_tuple(0, 2)}

    def test_fractional_vertex(self):
        # 2x <= 1, x >= 0: vertices {0, 1/2}.
        p = LinearProgram.build([1], a_ub=[[2]], b_ub=[1], bounds=[(0, None)])
        verts = set(enumerate_vertices(p))
        assert verts == {(Fraction(0),), (Fraction(1, 2),)}

    def test_equality_reduces_dimension(self):
        # x + y == 2, 0 <= x <= 2: vertices (0,2) and (2,0).
        p = LinearProgram.build(
            [1, 1], a_eq=[[1, 1]], b_eq=[2], bounds=[(0, 2), (None, None)]
        )
        verts = set(enumerate_vertices(p))
        assert verts == {frac_tuple(0, 2), frac_tuple(2, 0)}

    def test_empty_polyhedron(self):
        p = LinearProgram.build(
            [1], a_ub=[[1], [-1]], b_ub=[0, -1], bounds=[(None, None)]
        )
        assert enumerate_vertices(p) == []

    def test_guard_on_constraint_count(self):
        p = LinearProgram.build([1] * 5, bounds=[(0, 1)] * 5)
        with pytest.raises(ValueError, match="guard"):
            enumerate_vertices(p, max_constraints=3)

    def test_paper_formulation_I_vertices(self):
        """Appendix Eq 8.1 subset I at mu = 4: exactly the two extreme
        points the paper reports, [1,1,4] and [1,4,1] (pi_1 = 1)."""
        mu = 4
        p = LinearProgram.build(
            [mu] * 3,
            a_ub=[[0, -1, -1]],
            b_ub=[-(mu + 1)],
            bounds=[(1, None)] * 3,
        )
        verts = set(enumerate_vertices(p))
        assert frac_tuple(1, 1, mu) in verts
        assert frac_tuple(1, mu, 1) in verts
        assert len(verts) == 2


class TestBestIntegral:
    def test_picks_minimum(self):
        p = LinearProgram.build(
            [1, 3], a_ub=[[-1, -1]], b_ub=[-2], bounds=[(0, None), (0, None)]
        )
        best = best_integral_vertex(p)
        assert best is not None
        point, obj = best
        assert point == (2, 0)
        assert obj == 2

    def test_skips_fractional(self):
        # Only vertices are 0 and 1/2: best integral is 0.
        p = LinearProgram.build([-1], a_ub=[[2]], b_ub=[1], bounds=[(0, None)])
        point, obj = best_integral_vertex(p)
        assert point == (0,)

    def test_none_when_no_integral_vertex(self):
        # x == 1/2 exactly: single fractional vertex.
        p = LinearProgram.build([1], a_eq=[[2]], b_eq=[1], bounds=[(None, None)])
        assert best_integral_vertex(p) is None

    def test_deterministic_tie_break(self):
        # Two vertices with equal objective: lexicographically smaller wins.
        p = LinearProgram.build(
            [1, 1], a_ub=[[-1, -1]], b_ub=[-2], bounds=[(0, 2), (0, 2)]
        )
        point, _obj = best_integral_vertex(p)
        assert point == (0, 2)

    def test_agrees_with_branch_bound_when_integral(self):
        """On a polyhedron with all-integral vertices the appendix
        technique and B&B must find the same optimum (the appendix's
        whole premise)."""
        mu = 4
        p = LinearProgram.build(
            [mu] * 3,
            a_ub=[[0, -1, -1]],
            b_ub=[-(mu + 1)],
            bounds=[(1, None)] * 3,
        )
        assert all_vertices_integral(p)
        point, obj = best_integral_vertex(p)
        bb = solve_ilp(p)
        assert float(obj) == pytest.approx(bb.objective)


class TestAllIntegral:
    def test_true_for_unimodular_system(self):
        p = LinearProgram.build(
            [1, 1], a_ub=[[1, 1]], b_ub=[3], bounds=[(0, None), (0, None)]
        )
        assert all_vertices_integral(p)

    def test_false_with_fractional_vertex(self):
        p = LinearProgram.build([1], a_ub=[[2]], b_ub=[1], bounds=[(0, None)])
        assert not all_vertices_integral(p)
