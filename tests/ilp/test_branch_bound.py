"""Unit tests for repro.ilp.branch_bound."""

import pytest

from repro.ilp import LinearProgram, solve_ilp, solve_lp_relaxation


class TestLPRelaxation:
    def test_simple_lp(self):
        # min x + y  s.t. x + y >= 2, x,y >= 0  -> 2.
        p = LinearProgram.build(
            [1, 1], a_ub=[[-1, -1]], b_ub=[-2], bounds=[(0, None)] * 2
        )
        sol = solve_lp_relaxation(p)
        assert sol.ok
        assert sol.objective == pytest.approx(2.0)

    def test_infeasible(self):
        p = LinearProgram.build(
            [1], a_ub=[[1], [-1]], b_ub=[0, -1], bounds=[(None, None)]
        )
        assert solve_lp_relaxation(p).status == "infeasible"

    def test_unbounded(self):
        p = LinearProgram.build([-1], bounds=[(0, None)])
        assert solve_lp_relaxation(p).status == "unbounded"


class TestBranchBound:
    def test_integer_rounding_needed(self):
        # min -x  s.t. 2x <= 5: LP optimum x=2.5, ILP optimum x=2.
        p = LinearProgram.build([-1], a_ub=[[2]], b_ub=[5], bounds=[(0, None)])
        sol = solve_ilp(p)
        assert sol.ok
        assert sol.x_int() == (2,)
        assert sol.objective == pytest.approx(-2.0)

    def test_knapsack_style(self):
        # max 5a + 4b  s.t. 6a + 4b <= 11, a,b in {0..}: a=1,b=1 -> 9.
        p = LinearProgram.build(
            [-5, -4], a_ub=[[6, 4]], b_ub=[11], bounds=[(0, None)] * 2
        )
        sol = solve_ilp(p)
        assert sol.x_int() == (1, 1)
        assert sol.objective == pytest.approx(-9.0)

    def test_equality_constrained(self):
        # min x + y  s.t. x + 2y == 7, x,y >= 0 integer: (1,3) -> 4.
        p = LinearProgram.build(
            [1, 1], a_eq=[[1, 2]], b_eq=[7], bounds=[(0, None)] * 2
        )
        sol = solve_ilp(p)
        assert sol.ok
        x, y = sol.x_int()
        assert x + 2 * y == 7
        assert x + y == 4

    def test_integer_infeasible_but_lp_feasible(self):
        # 2x == 1 has LP solution 0.5 but no integer solution.
        p = LinearProgram.build([1], a_eq=[[2]], b_eq=[1], bounds=[(0, None)])
        assert solve_ilp(p).status == "infeasible"

    def test_lp_infeasible(self):
        p = LinearProgram.build(
            [1], a_ub=[[1], [-1]], b_ub=[0, -1], bounds=[(None, None)]
        )
        assert solve_ilp(p).status == "infeasible"

    def test_unbounded_root(self):
        p = LinearProgram.build([-1], bounds=[(0, None)])
        assert solve_ilp(p).status == "unbounded"

    def test_already_integral_root(self):
        p = LinearProgram.build(
            [1, 1], a_ub=[[-1, 0], [0, -1]], b_ub=[-1, -2], bounds=[(0, None)] * 2
        )
        sol = solve_ilp(p)
        assert sol.x_int() == (1, 2)
        assert sol.nodes >= 1

    def test_mixed_integer(self):
        # y continuous: min -x - y s.t. x + y <= 2.5, x integer.
        p = LinearProgram.build(
            [-1, -1],
            a_ub=[[1, 1]],
            b_ub=[2.5],
            bounds=[(0, None), (0, None)],
            integer=[True, False],
        )
        sol = solve_ilp(p)
        assert sol.ok
        assert sol.objective == pytest.approx(-2.5)
        assert float(sol.x[0]).is_integer()

    def test_node_budget_enforced(self):
        # A problem needing branching with budget 0 nodes must raise.
        p = LinearProgram.build([-1], a_ub=[[2]], b_ub=[5], bounds=[(0, None)])
        with pytest.raises(RuntimeError, match="node budget"):
            solve_ilp(p, max_nodes=0)

    def test_paper_scale_problem(self):
        """The matmul formulation subproblem I at mu = 4 (Eq 8.1)."""
        mu = 4
        p = LinearProgram.build(
            [mu, mu, mu],
            a_ub=[[0, -1, -1]],
            b_ub=[-(mu + 1)],
            bounds=[(1, None)] * 3,
        )
        sol = solve_ilp(p)
        assert sol.ok
        pi = sol.x_int()
        assert pi[1] + pi[2] >= mu + 1
        assert sol.objective == pytest.approx(mu * (1 + mu + 1))

    def test_negative_variables_allowed(self):
        p = LinearProgram.build(
            [1], a_ub=[[-1]], b_ub=[3], bounds=[(None, None)]
        )
        sol = solve_ilp(p)
        assert sol.ok
        assert sol.x_int() == (-3,)
