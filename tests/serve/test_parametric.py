"""Parametric jobs: the serve layer answering any size from one compile.

A ``parametric`` job routes a schedule search through the
:mod:`repro.symbolic` design compiler.  The compiled artifact is keyed
by the compile parameters *without* the concrete size, so after the
first job pays for the compile, any other size inside the certified
range is answered from cache by O(1) polynomial evaluation — no search
shards at all.  Sizes outside the certificate fall back to the ordinary
journaled enumerative search.
"""

import sys

import pytest

from repro.core.optimize import procedure_5_1
from repro.model import matrix_multiplication
from repro.model.validate import SpecError
from repro.serve.protocol import MAX_SYMBOLIC_MU, parse_job_spec

from .conftest import ServerProc

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX signal handling required"
)


def parametric_spec(mu, mu_range=(1, 12)):
    return {
        "task": "parametric", "algorithm": "matmul", "mu": [mu],
        "space": [[1, 1, -1]], "mu_range": list(mu_range),
    }


class TestParametricSpec:
    def test_defaults_normalize(self):
        spec = parse_job_spec({
            "task": "parametric", "algorithm": "matmul", "mu": [6],
            "space": [[1, 1, -1]],
        })
        assert spec.options["method"] == "auto"
        assert spec.options["mu_range"] == (1, 16)

    def test_digest_separates_sizes_but_not_strategy(self):
        a = parse_job_spec(parametric_spec(6))
        b = parse_job_spec(parametric_spec(9))
        c = parse_job_spec({**parametric_spec(6), "jobs": 4})
        assert a.digest != b.digest          # different answered size
        assert a.digest == c.digest          # execution strategy invisible

    def test_compile_identity_is_shared_across_sizes(self):
        a = parse_job_spec(parametric_spec(6))
        b = parse_job_spec(parametric_spec(9))
        pa = a.run_params(a.build_algorithm())
        pb = b.run_params(b.build_algorithm())
        assert pa.pop("eval_mu") == 6
        assert pb.pop("eval_mu") == 9
        assert pa == pb                      # same compiled artifact

    def test_round_trips_the_job_record(self):
        spec = parse_job_spec(parametric_spec(6))
        rebuilt = type(spec).from_dict(spec.to_dict())
        assert rebuilt.options == spec.options
        assert rebuilt.digest == spec.digest

    @pytest.mark.parametrize("mu_range", [
        [0, 5], [7, 3], [1], "1:5", [1, MAX_SYMBOLIC_MU + 1], [1, True],
    ])
    def test_bad_ranges_are_rejected(self, mu_range):
        with pytest.raises(SpecError):
            parse_job_spec({**parametric_spec(6), "mu_range": mu_range})

    def test_non_uniform_size_is_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec({
                "task": "parametric", "algorithm": "convolution",
                "mu": [2, 5], "space": [[1, 1]],
            })
        assert "uniform" in str(excinfo.value)


class TestParametricService:
    def test_unseen_size_is_answered_from_cache_with_no_shards(self, tmp_path):
        proc = ServerProc(tmp_path / "state", cache_dir=tmp_path / "cache")
        try:
            client = proc.client()
            first = client.submit(parametric_spec(6))
            done = client.wait(first["id"])
            assert done["state"] == "done"
            assert done["result"]["mode"] == "symbolic"
            assert done["telemetry"]["compiled"] is True

            # A size never seen before: answered purely from the
            # compiled artifact — no compile, no search shards.
            second = client.submit(parametric_spec(9))
            assert second["id"] != first["id"]
            done2 = client.wait(second["id"])
            assert done2["result"]["mode"] == "symbolic"
            assert done2["telemetry"]["compiled"] is False
            assert done2["telemetry"]["shards_dispatched"] == 0
            events = list(client.events(second["id"]))
            assert not any(e["event"] == "shard_done" for e in events)

            # Bit-identical to the enumerative engine.
            direct = procedure_5_1(matrix_multiplication(9), [[1, 1, -1]])
            assert tuple(done2["result"]["pi"]) == tuple(direct.schedule.pi)
            assert done2["result"]["total_time"] == direct.total_time
        finally:
            proc.stop()

    def test_size_outside_the_certificate_falls_back(self, tmp_path):
        proc = ServerProc(tmp_path / "state", cache_dir=tmp_path / "cache")
        try:
            client = proc.client()
            record = client.submit(parametric_spec(9, mu_range=(1, 6)))
            done = client.wait(record["id"])
            assert done["state"] == "done"
            assert done["result"]["mode"] == "enumerative-fallback"
            direct = procedure_5_1(matrix_multiplication(9), [[1, 1, -1]])
            assert tuple(done["result"]["pi"]) == tuple(direct.schedule.pi)
            assert done["result"]["total_time"] == direct.total_time
        finally:
            proc.stop()
