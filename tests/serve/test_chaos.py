"""End-to-end chaos suite: a real server under injected faults.

Each test boots ``repro serve`` in a subprocess with one fault armed
(``$REPRO_SERVE_FAULT``, see :mod:`repro.serve.hardening`) and proves
the containment contract from the ISSUE:

* the server keeps answering ``/healthz`` under every fault;
* over-capacity submits are shed with 503 + ``Retry-After`` (header
  and machine-readable body), never buffered or dropped silently;
* a poison spec is executed at most ``breaker_threshold`` times EVER,
  across restarts included — after that, resubmission answers from the
  recorded failure;
* a hung execution loses its worker slot to the watchdog and the slot
  immediately serves the next job;
* disk faults degrade the store to memory (flagged, visible on
  ``/healthz``) without wedging the server or corrupting answers;
* every completed result is bit-identical to an unfaulted run.
"""

import json
import time
from http.client import HTTPConnection

import pytest

from .conftest import MATMUL4_SPEC, MATMUL6_SPEC, ServerProc

MATMUL3_SPEC = {
    "task": "schedule", "algorithm": "matmul", "mu": [3],
    "space": [[1, 1, -1]],
}

MATMUL5_SPEC = {
    "task": "schedule", "algorithm": "matmul", "mu": [5],
    "space": [[1, 1, -1]],
}


def raw_request(port, method, path, payload=None):
    """One request via http.client so response *headers* are visible
    (the ServeClient already folds Retry-After into ServeError)."""
    conn = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        return (response.status, dict(response.getheaders()),
                json.loads(data) if data else {})
    finally:
        conn.close()


def wait_until(predicate, timeout=30.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError(f"{message} not reached within {timeout}s")


def running_executions(client, job_id):
    """How many times the job actually entered execution — the count
    the quarantine acceptance criterion is about."""
    return sum(1 for e in client.events(job_id)
               if e.get("event") == "state" and e.get("state") == "running")


@pytest.fixture(scope="module")
def clean_results(tmp_path_factory):
    """Ground truth: the same specs on an unfaulted server."""
    proc = ServerProc(tmp_path_factory.mktemp("clean") / "state")
    try:
        client = proc.client()
        results = {}
        for name, spec in (("mu3", MATMUL3_SPEC), ("mu4", MATMUL4_SPEC),
                           ("mu5", MATMUL5_SPEC)):
            record = client.submit(spec)
            final = client.wait(record["id"], timeout=120)
            assert final["state"] == "done"
            results[name] = final["result"]
        return results
    finally:
        proc.stop()


# -- overload shedding ---------------------------------------------------------


def test_overload_sheds_503_with_retry_after(tmp_path, clean_results):
    """Past --max-queue the server sheds instead of buffering: 503,
    Retry-After header, machine-readable body — and /healthz stays up
    the whole time."""
    proc = ServerProc(
        tmp_path / "state",
        extra_args=["--workers", "1", "--max-queue", "1"],
        env={"REPRO_DSE_SLOW": "0.4"},
    )
    try:
        client = proc.client()
        first = client.submit(MATMUL4_SPEC)
        wait_until(lambda: client.job(first["id"])["state"] == "running",
                   message="first job running")
        queued = client.submit(MATMUL5_SPEC)   # fills the 1-slot queue
        assert client.job(queued["id"])["state"] == "queued"

        status, headers, body = raw_request(proc.port, "POST", "/jobs",
                                            MATMUL6_SPEC)
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        assert body["code"] == "queue_full"
        assert body["retry_after"] > 0
        assert "error" in body

        # The server is alive and says so; readiness correctly reports
        # the full queue.
        health = client.health()
        assert health["status"] == "ok"
        assert health["shed"].get("queue_full", 0) >= 1
        assert health["queue"] == {"depth": 1, "max": 1}
        status, _headers, ready = raw_request(proc.port, "GET", "/readyz")
        assert status == 503
        assert "queue_full" in ready["reasons"]
        # The client treats not-ready as a poll answer, not a failure.
        polled = client.ready()
        assert polled["ready"] is False
        assert "queue_full" in polled["reasons"]

        # Nothing admitted was lost: both jobs complete and the result
        # of the one that ran under load matches the unfaulted run.
        final = client.wait(first["id"], timeout=120)
        assert final["state"] == "done"
        assert final["result"] == clean_results["mu4"]
        assert client.wait(queued["id"], timeout=120)["state"] == "done"

        # Capacity freed: the shed spec is accepted on retry.
        retried = client.submit(MATMUL6_SPEC)
        assert retried["state"] == "queued"
        assert client.ready()["ready"] is True
        client.cancel(retried["id"])
    finally:
        proc.stop()


# -- poison-job quarantine + circuit breaker ------------------------------------


def test_poison_quarantine_breaker_and_restart(tmp_path, clean_results):
    """A spec that crashes the engine every time is executed at most
    --breaker-threshold times EVER — resubmits (same server or after a
    restart) answer from the recorded failure, and the tenant's breaker
    sheds unrelated new work while open."""
    state_dir = tmp_path / "state"
    env = {"REPRO_SERVE_FAULT": "crash:always"}
    extra = ["--workers", "1", "--breaker-threshold", "2",
             "--breaker-cooldown", "300"]
    proc = ServerProc(state_dir, extra_args=extra, env=env)
    try:
        client = proc.client()
        record = client.submit(MATMUL4_SPEC)
        job_id = record["id"]
        first = client.wait(job_id, timeout=60)
        assert first["state"] == "failed"
        assert "InjectedFault" in first["error"]
        assert not first["quarantined"]

        # Strike two: resubmission is the retry button — and the last
        # allowed execution.
        client.submit(MATMUL4_SPEC)
        second = client.wait(job_id, timeout=60)
        assert second["state"] == "failed"
        assert second["quarantined"] is True
        assert running_executions(client, job_id) == 2

        # From now on the recorded failure IS the answer.
        answered = client.submit(MATMUL4_SPEC)
        assert answered["created"] is False
        assert answered["quarantined"] is True
        assert "InjectedFault" in answered["error"]
        assert running_executions(client, job_id) == 2

        health = client.health()
        assert health["quarantined"] == 1
        assert health["breakers"]["default"]["state"] == "open"

        # Two consecutive failures also opened the tenant's breaker:
        # unrelated new work is shed until the cooldown.
        status, headers, body = raw_request(proc.port, "POST", "/jobs",
                                            MATMUL5_SPEC)
        assert status == 503
        assert body["code"] == "breaker_open"
        assert int(headers["Retry-After"]) >= 1
        assert client.health()["status"] == "ok"
    finally:
        proc.stop()

    # Restart on the same state dir, fault still armed: the quarantine
    # is durable, so the poison spec is NOT re-enqueued by recovery and
    # NOT re-executed on resubmit.
    proc = ServerProc(state_dir, extra_args=extra, env=env)
    try:
        client = proc.client()
        record = client.job(job_id)
        assert record["state"] == "failed"
        assert record["quarantined"] is True
        answered = client.submit(MATMUL4_SPEC)
        assert answered["quarantined"] is True
        assert running_executions(client, job_id) == 2  # never ran again
        health = client.health()
        assert health["quarantined"] == 1
        # The breaker is per-generation (in-memory): a fresh server
        # gives the tenant a clean slate for NEW work.
        assert health["breakers"] == {}
        fresh = client.submit(MATMUL5_SPEC)
        assert fresh["state"] == "queued"
    finally:
        proc.stop()


# -- watchdog -------------------------------------------------------------------


def test_watchdog_reclaims_hung_worker_slot(tmp_path, clean_results):
    """A hung execution (deaf even to its stop event) is abandoned by
    the watchdog; the worker slot immediately serves the next job and
    the hung job is left resumable-interrupted."""
    proc = ServerProc(
        tmp_path / "state",
        extra_args=["--workers", "1", "--job-deadline", "3"],
        env={"REPRO_SERVE_FAULT": "hang", "REPRO_SERVE_FAULT_HANG": "8"},
    )
    try:
        client = proc.client()
        hung = client.submit(MATMUL4_SPEC)
        # deadline 3s + grace 2s < the 8s hang: the watchdog must
        # abandon, not wait it out.
        final = client.wait(hung["id"], timeout=30)
        assert final["state"] == "interrupted"
        assert not final["quarantined"]  # one strike < threshold

        health = client.health()
        assert health["watchdog"]["fired"] == 1
        assert health["watchdog"]["abandoned"] == 1
        assert health["workers"]["alive"] == 1

        actions = [e.get("action") for e in client.events(hung["id"])
                   if e.get("event") == "watchdog"]
        assert actions == ["deadline", "abandoned"]

        # The reclaimed slot does real work: the next job (the hang
        # fault was one-shot) completes with a clean-run answer.
        record = client.submit(MATMUL3_SPEC)
        done = client.wait(record["id"], timeout=60)
        assert done["state"] == "done"
        assert done["result"] == clean_results["mu3"]
    finally:
        proc.stop()


# -- disk-fault degradation -------------------------------------------------------


def test_disk_full_degrades_store_not_service(tmp_path, clean_results):
    """With every record/event write failing ENOSPC the server still
    accepts, runs and answers jobs — from memory, flagged degraded on
    the record and on /healthz — and stays in rotation on /readyz."""
    proc = ServerProc(
        tmp_path / "state",
        env={"REPRO_SERVE_FAULT": "disk_full:always"},
    )
    try:
        client = proc.client()
        record = client.submit(MATMUL4_SPEC)
        final = client.wait(record["id"], timeout=60)
        assert final["state"] == "done"
        assert final["degraded"] is True
        assert final["result"] == clean_results["mu4"]

        health = client.health()
        assert health["status"] == "ok"
        store = health["store"]
        assert store["ok"] is False
        assert store["degraded"] is True
        assert store["write_errors"] >= 1
        assert store["memory_records"] >= 1
        assert store["degraded_since"] is not None
        # Degradation is NOT unreadiness: serving from memory is the
        # containment working.
        assert client.ready()["ready"] is True
        # Events were parked in memory and still stream in order.
        states = [e["state"] for e in client.events(record["id"])
                  if e.get("event") == "state"]
        assert states[0] == "running" and states[-1] == "done"
    finally:
        proc.stop()


def test_corrupt_store_quarantined_on_restart(tmp_path, clean_results):
    """Records torn on disk (fsync lied / bitrot) never wedge startup:
    the next server moves them aside as *.json.corrupt, boots healthy,
    and a resubmit re-runs the search to the same answer."""
    state_dir = tmp_path / "state"
    proc = ServerProc(state_dir,
                      env={"REPRO_SERVE_FAULT": "corrupt_store:always"})
    try:
        client = proc.client()
        record = client.submit(MATMUL4_SPEC)
        final = client.wait(record["id"], timeout=60)
        # The torn write "succeeded": the live server answers from its
        # in-memory state, unaware disk is lying.
        assert final["state"] == "done"
        job_id = record["id"]
    finally:
        proc.stop()

    proc = ServerProc(state_dir)  # fault disarmed: a clean generation
    try:
        client = proc.client()
        corrupt = list((state_dir / "jobs").glob("*.json.corrupt"))
        assert len(corrupt) == 1
        assert client.health()["status"] == "ok"
        assert all(j["id"] != job_id for j in client.jobs())

        resubmitted = client.submit(MATMUL4_SPEC)
        assert resubmitted["created"] is True
        final = client.wait(resubmitted["id"], timeout=60)
        assert final["state"] == "done"
        assert final["result"] == clean_results["mu4"]
    finally:
        proc.stop()


# -- races ------------------------------------------------------------------------


def test_cancel_while_running_releases_slot_and_tenant_cap(tmp_path):
    """Cancelling a running job must release both the worker slot and
    the tenant's max_active budget — the two leaks that would slowly
    brick a server whose clients cancel a lot."""
    proc = ServerProc(
        tmp_path / "state",
        extra_args=["--workers", "1", "--max-active", "1"],
        env={"REPRO_DSE_SLOW": "0.4"},
    )
    try:
        client = proc.client()
        first = client.submit(MATMUL4_SPEC)
        wait_until(lambda: client.job(first["id"])["state"] == "running",
                   message="first job running")

        # The tenant cap holds while the job runs...
        status, headers, body = raw_request(proc.port, "POST", "/jobs",
                                            MATMUL5_SPEC)
        assert status == 429
        assert body["code"] == "tenant_busy"
        assert int(headers["Retry-After"]) >= 1

        client.cancel(first["id"])
        final = client.wait(first["id"], timeout=30)
        assert final["state"] == "cancelled"
        wait_until(lambda: client.health()["workers"]["busy"] == 0,
                   message="worker slot released")

        # ...and releases on cancel: the same spec is now admitted and
        # actually gets the worker.
        second = client.submit(MATMUL5_SPEC)
        assert second["state"] == "queued"
        wait_until(
            lambda: client.job(second["id"])["state"] in ("running", "done"),
            message="second job scheduled")
        client.cancel(second["id"])
        client.wait(second["id"], timeout=30)
    finally:
        proc.stop()
