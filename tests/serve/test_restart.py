"""The service's crash story: kill the server mid-run, restart, resume.

Mirrors ``tests/dse/test_signals.py`` at the service level.  A slowed
search is interrupted by SIGTERM after at least two shards are
journaled; the restarted server must pick the job up on its own (no
resubmission), replay the journaled shards, and finish with a result
*equal* to an uninterrupted serial run — the engine's serial-equality
contract surviving a process boundary and a server generation.
"""

import sys
import time

import pytest

from repro.dse.executor import explore_schedule
from repro.model.library import matrix_multiplication
from repro.serve.protocol import encode_result

from .conftest import MATMUL6_SPEC, ServerProc

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX signal handling required"
)


def wait_for_journal_lines(path, wanted: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            with open(path, "rb") as fh:
                if sum(1 for line in fh if line.endswith(b"\n")) >= wanted:
                    return
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {wanted} lines")


class TestKillAndRestart:
    def test_sigterm_then_restart_resumes_to_equal_result(self, tmp_path):
        state = tmp_path / "state"

        # Generation 1: slowed shards, killed mid-run.
        gen1 = ServerProc(state, env={"REPRO_DSE_SLOW": "0.4"})
        try:
            client = gen1.client()
            record = client.submit(MATMUL6_SPEC)
            job_id = record["id"]
            journal = state / "journals" / f"{job_id}.ckpt"
            wait_for_journal_lines(journal, 2)
            assert gen1.sigterm() == 0
        finally:
            gen1.stop()

        # The interruption is durable: the record says so on disk.
        from repro.serve.store import JobStore

        interrupted = JobStore(state).load(job_id)
        assert interrupted is not None
        assert interrupted.state == "interrupted"

        # Generation 2: full speed.  No resubmission — recovery alone
        # must re-enqueue and resume the job.
        gen2 = ServerProc(state)
        try:
            client = gen2.client()
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            assert final["resumes"] >= 1
            assert final["telemetry"]["shards_resumed"] >= 1

            serial = explore_schedule(
                matrix_multiplication(6), [[1, 1, -1]], jobs=1
            )
            assert final["result"] == encode_result("schedule", serial)
        finally:
            gen2.stop()

    def test_clean_restart_with_no_pending_jobs(self, tmp_path):
        state = tmp_path / "state"
        gen1 = ServerProc(state)
        try:
            client = gen1.client()
            record = client.submit(MATMUL6_SPEC)
            client.wait(record["id"])
            assert gen1.sigterm() == 0
        finally:
            gen1.stop()

        gen2 = ServerProc(state)
        try:
            client = gen2.client()
            # The finished job survived the restart, result intact...
            final = client.job(record["id"])
            assert final["state"] == "done"
            assert final["result"]["total_time"] == 49
            # ...and an identical request still deduplicates onto it.
            again = client.submit(MATMUL6_SPEC)
            assert again["created"] is False
            assert again["id"] == record["id"]
        finally:
            gen2.stop()
