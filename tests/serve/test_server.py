"""End-to-end tests against a real ``repro serve`` subprocess."""

import sys

import pytest

from repro.dse.executor import explore_schedule
from repro.model.library import matrix_multiplication
from repro.serve.client import ServeError
from repro.serve.protocol import encode_result

from .conftest import MATMUL4_SPEC, ServerProc

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX signal handling required"
)


class TestJobLifecycle:
    def test_served_result_equals_direct_library_call(self, server):
        client = server.client()
        record = client.submit(MATMUL4_SPEC)
        assert record["created"] is True
        final = client.wait(record["id"])
        assert final["state"] == "done"

        serial = explore_schedule(
            matrix_multiplication(4), [[1, 1, -1]], jobs=1
        )
        assert final["result"] == encode_result("schedule", serial)
        assert final["telemetry"]["wall_time"] > 0

    def test_identical_spec_answers_without_new_work(self, server):
        client = server.client()
        first = client.submit(MATMUL4_SPEC)
        client.wait(first["id"])
        again = client.submit(MATMUL4_SPEC)
        assert again["created"] is False
        assert again["id"] == first["id"]
        assert again["state"] == "done"
        assert "result" in again  # answered in the submit response itself

    def test_listing_and_health(self, server):
        client = server.client()
        record = client.submit(MATMUL4_SPEC)
        client.wait(record["id"])
        jobs = client.jobs()
        assert [j["id"] for j in jobs] == [record["id"]]
        assert "result" not in jobs[0]  # summaries stay light
        assert client.health()["jobs"].get("done") == 1

    def test_events_materialize_progress(self, server):
        client = server.client()
        record = client.submit(MATMUL4_SPEC)
        client.wait(record["id"])
        events = list(client.events(record["id"]))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "state"
        assert "shard_done" in kinds
        assert "phase" in kinds          # ring spans, via repro.obs
        assert kinds[-1] == "state"      # terminal transition
        ring = next(e for e in events if e["event"] == "phase")
        assert ring["phase"] == "dse.ring"
        assert "wall_time" in ring

    def test_follow_streams_until_done(self, server):
        client = server.client()
        record = client.submit(MATMUL4_SPEC)
        seen = [e["event"] for e in client.events(record["id"], follow=True)]
        assert seen and seen[-1] == "state"
        assert client.job(record["id"])["state"] == "done"


class TestErrors:
    def test_invalid_spec_is_400_with_diagnosis(self, server):
        client = server.client()
        with pytest.raises(ServeError) as excinfo:
            client.submit({"task": "schedule", "algorithm": "matmul",
                           "mu": [4]})
        assert excinfo.value.status == 400
        assert "space" in str(excinfo.value)

    def test_non_json_body_is_400(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            conn.request("POST", "/jobs", body=b"not json{")
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_unknown_job_is_404(self, server):
        with pytest.raises(ServeError) as excinfo:
            server.client().job("doesnotexist")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, server):
        with pytest.raises(ServeError) as excinfo:
            server.client()._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_validation_happens_before_enqueueing(self, server):
        client = server.client()
        with pytest.raises(ServeError):
            client.submit({"task": "schedule", "algorithm": "matmul",
                           "mu": [4], "space": [[1, 1, -1]],
                           "surprise": True})
        assert client.jobs() == []  # nothing was admitted


class TestCancelAndAdmission:
    def test_cancel_running_job(self, slow_server):
        client = slow_server.client()
        record = client.submit(MATMUL4_SPEC)
        # Let it start, then stop it mid-search.
        for _ in range(100):
            if client.job(record["id"])["state"] == "running":
                break
            import time
            time.sleep(0.05)
        client.cancel(record["id"])
        final = client.wait(record["id"], timeout=30)
        assert final["state"] == "cancelled"

    def test_tenant_cap_yields_429(self, tmp_path):
        proc = ServerProc(
            tmp_path / "state",
            env={"REPRO_DSE_SLOW": "0.4"},
            extra_args=["--max-active", "1"],
        )
        try:
            client = proc.client()
            first = client.submit(MATMUL4_SPEC)
            other = dict(MATMUL4_SPEC, mu=[5])
            with pytest.raises(ServeError) as excinfo:
                client.submit(other)
            assert excinfo.value.status == 429
            # Deduplicating onto the running job stays allowed: it adds
            # no work.
            again = client.submit(MATMUL4_SPEC)
            assert again["id"] == first["id"]
            assert again["created"] is False
        finally:
            proc.stop()
