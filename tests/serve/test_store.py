"""Unit tests for the durable job store."""

import json

from repro.serve.store import JobRecord, JobStore


def record(job_id="abc123", **kw):
    return JobRecord(
        id=job_id, digest=job_id * 4, task="schedule",
        spec={"task": "schedule"}, **kw,
    )


class TestRecords:
    def test_save_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        original = record(state="running", deduped=3, resumes=1)
        store.save(original)
        loaded = store.load("abc123")
        assert loaded == original

    def test_load_missing_is_none(self, tmp_path):
        assert JobStore(tmp_path).load("nope") is None

    def test_damaged_record_is_quarantined(self, tmp_path):
        store = JobStore(tmp_path)
        path = store.jobs_dir / "bad.json"
        path.write_text("{torn")
        assert store.load("bad") is None
        assert not path.exists()
        assert (store.jobs_dir / "bad.json.corrupt").exists()

    def test_unknown_state_is_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        path = store.jobs_dir / "weird.json"
        data = record("weird").to_dict()
        data["state"] = "levitating"
        path.write_text(json.dumps(data))
        assert store.load("weird") is None
        assert (store.jobs_dir / "weird.json.corrupt").exists()

    def test_load_all_sorts_by_creation(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(record("later", created=200.0))
        store.save(record("early", created=100.0))
        assert [r.id for r in store.load_all()] == ["early", "later"]

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(record())
        assert not list(store.jobs_dir.glob(".tmp-*"))

    def test_public_view_hides_absent_fields(self, tmp_path):
        view = record().public()
        assert "result" not in view
        assert "error" not in view
        done = record(result={"found": True}, error=None).public()
        assert done["result"] == {"found": True}


class TestEvents:
    def test_append_and_read(self, tmp_path):
        store = JobStore(tmp_path)
        store.append_event("j1", {"event": "state", "state": "queued"})
        store.append_event("j1", {"event": "shard_done", "completed": 1})
        events = store.read_events("j1")
        assert [e["event"] for e in events] == ["state", "shard_done"]
        assert all("ts" in e for e in events)

    def test_read_from_offset(self, tmp_path):
        store = JobStore(tmp_path)
        for i in range(5):
            store.append_event("j1", {"event": "tick", "i": i})
        assert [e["i"] for e in store.read_events("j1", start=3)] == [3, 4]

    def test_missing_log_is_empty(self, tmp_path):
        assert JobStore(tmp_path).read_events("ghost") == []

    def test_torn_tail_is_dropped(self, tmp_path):
        store = JobStore(tmp_path)
        store.append_event("j1", {"event": "ok"})
        with open(store.events_path("j1"), "a", encoding="utf-8") as fh:
            fh.write('{"event": "torn", "no_newline"')
        events = store.read_events("j1")
        assert [e["event"] for e in events] == ["ok"]

    def test_journal_path_is_per_job(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.journal_path("a") != store.journal_path("b")
        assert store.journal_path("a").parent == store.journals_dir
