"""Shared harness for the serve tests: a real server subprocess.

The server is exercised the way operators run it — ``repro serve`` in
its own process, ephemeral port via ``--port-file`` — so the tests
cover the CLI wiring, the signal handling and the HTTP surface, not
just the Python internals.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


class ServerProc:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, state_dir: Path, *, extra_args=(), env=None,
                 cache_dir: Path | None = None) -> None:
        self.state_dir = state_dir
        self.port_file = state_dir / "port"
        if self.port_file.exists():
            self.port_file.unlink()
        run_env = dict(os.environ, PYTHONPATH=SRC)
        run_env.update(env or {})
        args = [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir),
            "--port", "0", "--port-file", str(self.port_file),
            "--log-level", "INFO",
        ]
        if cache_dir is None:
            args.append("--no-cache")
        else:
            args += ["--cache-dir", str(cache_dir)]
        args += list(extra_args)
        self.proc = subprocess.Popen(
            args, env=run_env, stderr=subprocess.PIPE, text=True
        )
        self.port = self._await_port()

    def _await_port(self, timeout: float = 20.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server died at startup:\n{self.proc.stderr.read()}"
                )
            if self.port_file.exists():
                text = self.port_file.read_text().strip()
                if text:
                    return int(text)
            time.sleep(0.05)
        raise RuntimeError("server never wrote its port file")

    def client(self):
        from repro.serve.client import ServeClient

        return ServeClient(port=self.port)

    def sigterm(self, timeout: float = 30.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        self.proc.stderr.close()


@pytest.fixture
def server(tmp_path):
    """A plain server (no cache, 2 workers) torn down after the test."""
    proc = ServerProc(tmp_path / "state")
    yield proc
    proc.stop()


@pytest.fixture
def slow_server(tmp_path):
    """A server whose shards each sleep 0.4s — jobs stay observable
    long enough to be cancelled, deduplicated onto, or killed."""
    proc = ServerProc(tmp_path / "state", env={"REPRO_DSE_SLOW": "0.4"})
    yield proc
    proc.stop()


MATMUL4_SPEC = {
    "task": "schedule", "algorithm": "matmul", "mu": [4],
    "space": [[1, 1, -1]],
}

MATMUL6_SPEC = {
    "task": "schedule", "algorithm": "matmul", "mu": [6],
    "space": [[1, 1, -1]],
}
