"""Unit tests for the failure-containment machinery.

Everything here is in-process: the token bucket and breaker run on an
injected fake clock, the quarantine registry and the degraded store on
``tmp_path``.  The end-to-end behavior (a real server under injected
faults) lives in ``test_chaos.py``.
"""

import errno
import json
import os

import pytest

from repro.serve.hardening import (
    BreakerOpen,
    CircuitBreaker,
    HardeningPolicy,
    QuarantineRegistry,
    QueueFull,
    RateLimited,
    Rejected,
    TokenBucket,
    _parse_fault_spec,
)
from repro.serve.protocol import error_body
from repro.serve.queue import TenantBusy, TenantPolicy
from repro.serve.store import JobRecord, JobStore


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# -- policy validation --------------------------------------------------------


class TestHardeningPolicy:
    def test_defaults_are_valid(self):
        policy = HardeningPolicy()
        assert policy.max_queue == 256
        assert policy.breaker_threshold == 3

    @pytest.mark.parametrize("kwargs", [
        {"max_queue": 0},
        {"job_deadline": 0.0},
        {"job_deadline": -1.0},
        {"watchdog_grace": -0.1},
        {"breaker_threshold": 0},
        {"breaker_cooldown": -1.0},
        {"retry_after": 0.0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HardeningPolicy(**kwargs)

    def test_disabled_turns_everything_off(self):
        policy = HardeningPolicy.disabled()
        assert policy.max_queue is None
        assert policy.job_deadline is None
        assert policy.breaker_threshold is None


class TestRejectedShapes:
    def test_statuses_and_codes(self):
        assert QueueFull("x").status == 503
        assert QueueFull("x").code == "queue_full"
        assert RateLimited("x").status == 429
        assert BreakerOpen("x").status == 503
        assert TenantBusy("x").status == 429
        assert TenantBusy("x").code == "tenant_busy"
        assert issubclass(TenantBusy, Rejected)

    def test_retry_after_carried(self):
        exc = QueueFull("full", retry_after=2.5)
        assert exc.retry_after == 2.5

    def test_error_body_shape(self):
        body = error_body("nope", code="queue_full", retry_after=1.5)
        assert body == {"error": "nope", "code": "queue_full",
                        "retry_after": 1.5}
        assert error_body("nope") == {"error": "nope"}


# -- token bucket --------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_default_burst_is_rate(self):
        assert TokenBucket(rate=8.0).burst == 8
        assert TokenBucket(rate=0.5).burst == 1

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0}, {"rate": -1.0}, {"rate": 1.0, "burst": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**kwargs)


# -- circuit breaker -----------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(3, cooldown=10.0, clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow() == 0.0
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() > 0.0
        assert breaker.opened_total == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(2, cooldown=10.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.allow() > 0.0          # open: shed
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow() == 0.0         # the probe
        assert breaker.allow() > 0.0          # only ONE probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() == 0.0

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow() == 0.0         # probe admitted
        breaker.record_failure()              # probe failed
        assert breaker.state == "open"
        assert breaker.allow() > 0.0
        assert breaker.opened_total == 2

    def test_retry_after_counts_down_the_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.allow() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.allow() == pytest.approx(6.0)


# -- quarantine registry --------------------------------------------------------


class TestQuarantineRegistry:
    def test_quarantines_at_threshold(self, tmp_path):
        registry = QuarantineRegistry(tmp_path / "q", threshold=2)
        digest = "a" * 64
        assert registry.record_failure(digest, "boom 1") is False
        assert registry.get(digest) is None
        assert registry.record_failure(digest, "boom 2") is True
        entry = registry.get(digest)
        assert entry is not None
        assert entry["strikes"] == 2
        assert entry["errors"][-1] == "boom 2"
        assert len(registry) == 1

    def test_survives_restart(self, tmp_path):
        root = tmp_path / "q"
        registry = QuarantineRegistry(root, threshold=1)
        registry.record_failure("b" * 64, "dead")
        reloaded = QuarantineRegistry(root, threshold=1)
        assert reloaded.get("b" * 64) is not None
        assert reloaded.strikes("b" * 64) == 1

    def test_partial_strikes_survive_restart(self, tmp_path):
        """A poison spec is executed at most `threshold` times EVER —
        strikes must accumulate across server generations."""
        root = tmp_path / "q"
        QuarantineRegistry(root, threshold=3).record_failure("c" * 64, "x")
        reloaded = QuarantineRegistry(root, threshold=3)
        assert reloaded.strikes("c" * 64) == 1
        assert reloaded.record_failure("c" * 64, "y") is False
        assert reloaded.record_failure("c" * 64, "z") is True

    def test_success_clears(self, tmp_path):
        registry = QuarantineRegistry(tmp_path / "q", threshold=2)
        registry.record_failure("d" * 64, "flake")
        registry.clear("d" * 64)
        assert registry.strikes("d" * 64) == 0
        assert list((tmp_path / "q").glob("*.json")) == []

    def test_damaged_entry_ignored(self, tmp_path):
        root = tmp_path / "q"
        root.mkdir()
        (root / "junk.json").write_text("{not json")
        registry = QuarantineRegistry(root, threshold=1)
        assert len(registry) == 0

    def test_disk_failure_keeps_memory_fidelity(self, tmp_path, monkeypatch):
        registry = QuarantineRegistry(tmp_path / "q", threshold=1)

        def boom(*a, **k):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("pathlib.Path.write_text", boom)
        assert registry.record_failure("e" * 64, "dead") is True
        assert registry.get("e" * 64) is not None
        assert registry.write_errors == 1


# -- fault-spec parsing ----------------------------------------------------------


class TestFaultSpec:
    def test_parse(self):
        assert _parse_fault_spec(None) is None
        assert _parse_fault_spec("") is None
        assert _parse_fault_spec("crash") == ("crash", False)
        assert _parse_fault_spec("disk_full:always") == ("disk_full", True)

    @pytest.mark.parametrize("raw", ["nope", "crash:often", "crash:always:x"])
    def test_bad_specs_rejected(self, raw):
        with pytest.raises(ValueError):
            _parse_fault_spec(raw)


# -- store degradation ------------------------------------------------------------


def make_record(i: int = 0) -> JobRecord:
    return JobRecord(id=f"job{i:013d}xyz", digest="f" * 64,
                     spec={"task": "schedule"}, task="schedule")


class TestStoreDegradation:
    def test_enospc_on_save_degrades_not_crashes(self, tmp_path, monkeypatch):
        store = JobStore(tmp_path / "state")
        record = make_record()

        def boom(*a, **k):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("tempfile.mkstemp", boom)
        store.save(record)  # must not raise
        assert record.degraded is True
        assert store.degraded is True
        assert store.health()["ok"] is False
        assert store.health()["memory_records"] == 1
        # The in-memory overlay answers reads.
        assert store.load(record.id) is record
        assert [r.id for r in store.load_all()] == [record.id]

    def test_recovery_drains_the_overlay(self, tmp_path, monkeypatch):
        store = JobStore(tmp_path / "state")
        record = make_record()
        real_mkstemp = __import__("tempfile").mkstemp
        fail = {"on": True}

        def flaky(*a, **k):
            if fail["on"]:
                raise OSError(errno.EIO, "I/O error")
            return real_mkstemp(*a, **k)

        monkeypatch.setattr("tempfile.mkstemp", flaky)
        store.save(record)
        assert store.degraded is True
        fail["on"] = False
        store.save(record)  # disk is back
        assert store.degraded is False
        assert record.degraded is False
        assert store.health()["ok"] is True
        # The durable copy has the flag cleared too.
        data = json.loads(
            (tmp_path / "state" / "jobs" / f"{record.id}.json").read_text())
        assert data["degraded"] is False

    def test_fsync_failure_quarantines_the_stale_record(self, tmp_path,
                                                        monkeypatch):
        store = JobStore(tmp_path / "state")
        record = make_record()
        store.save(record)  # good generation on disk
        path = tmp_path / "state" / "jobs" / f"{record.id}.json"
        assert path.exists()

        def bad_fsync(fd):
            raise OSError(errno.EIO, "I/O error")

        monkeypatch.setattr(os, "fsync", bad_fsync)
        record.state = "running"
        store.save(record)  # must not raise
        assert record.degraded is True
        assert not path.exists()  # stale record moved aside, not trusted
        assert path.with_name(path.name + ".fsyncfail").exists()
        assert store.load(record.id).state == "running"  # memory wins

    def test_event_append_failure_degrades_to_memory(self, tmp_path,
                                                     monkeypatch):
        store = JobStore(tmp_path / "state")
        store.append_event("j1", {"event": "state", "state": "queued"})

        real_open = open

        def boom(*args, **kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("builtins.open", boom)
        store.append_event("j1", {"event": "state", "state": "running"})
        monkeypatch.setattr("builtins.open", real_open)
        # Sticky: later events stay in memory so order is preserved.
        store.append_event("j1", {"event": "state", "state": "done"})
        events = store.read_events("j1")
        assert [e["state"] for e in events] == ["queued", "running", "done"]
        assert store.health()["memory_event_jobs"] == 1

    def test_degraded_record_roundtrips_public_flag(self, tmp_path,
                                                    monkeypatch):
        store = JobStore(tmp_path / "state")
        record = make_record()
        monkeypatch.setattr("tempfile.mkstemp",
                            lambda *a, **k: (_ for _ in ()).throw(
                                OSError(errno.ENOSPC, "full")))
        store.save(record)
        assert record.public()["degraded"] is True


# -- tenant policy extensions -----------------------------------------------------


class TestTenantPolicyRate:
    def test_from_dict_accepts_rate_and_burst(self):
        policy = TenantPolicy.from_dict({"rate": 5.0, "burst": 10})
        assert policy.rate == 5.0
        assert policy.burst == 10

    def test_unknown_fields_still_rejected(self):
        with pytest.raises(ValueError):
            TenantPolicy.from_dict({"rate": 5.0, "surprise": 1})
