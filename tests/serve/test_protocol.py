"""Unit tests for job-spec parsing, digests and result encoding."""

import pytest

from repro.dse.cache import canonical_key
from repro.dse.executor import (
    explore_schedule,
    explore_space,
    schedule_run_params,
)
from repro.model import SpecError
from repro.model.library import matrix_multiplication
from repro.serve.protocol import JobSpec, encode_result, parse_job_spec


def matmul_spec(**extra) -> dict:
    return {
        "task": "schedule", "algorithm": "matmul", "mu": [4],
        "space": [[1, 1, -1]], **extra,
    }


class TestParsing:
    def test_named_algorithm_schedule_spec(self):
        spec = parse_job_spec(matmul_spec())
        assert spec.task == "schedule"
        assert spec.options["space"] == ((1, 1, -1),)
        assert spec.options["method"] == "auto"
        assert spec.tenant == "default"
        assert list(spec.algorithm_spec["mu"]) == [4, 4, 4]

    def test_inline_algorithm_matches_named(self):
        algo = matrix_multiplication(4)
        inline = parse_job_spec({
            "task": "schedule",
            "algorithm": {
                "mu": list(algo.mu),
                "dependence": [list(r) for r in algo.dependence_matrix],
                "name": "custom",
            },
            "space": [[1, 1, -1]],
        })
        named = parse_job_spec(matmul_spec())
        # Same search → same digest, even though the names differ.
        assert inline.digest == named.digest

    def test_space_task_defaults(self):
        spec = parse_job_spec({
            "task": "space", "algorithm": "matmul", "mu": [4],
            "pi": [1, 2, 3],
        })
        assert spec.options == {
            "pi": (1, 2, 3), "array_dim": 1, "magnitude": 1,
            "keep_ranking": 10,
        }

    def test_joint_task_defaults(self):
        spec = parse_job_spec({
            "task": "joint", "algorithm": "matmul", "mu": [4],
        })
        assert spec.options["time_weight"] == 1.0
        assert spec.options["space_weight"] == 1.0

    def test_round_trip_preserves_digest(self):
        spec = parse_job_spec(matmul_spec(tenant="team-a", jobs=2))
        again = JobSpec.from_dict(spec.to_dict())
        assert again.digest == spec.digest
        assert again.tenant == "team-a"
        assert again.jobs == 2


class TestDigest:
    def test_digest_is_the_engine_run_key(self):
        spec = parse_job_spec(matmul_spec())
        algo = spec.build_algorithm()
        expected = canonical_key(
            schedule_run_params(algo, [[1, 1, -1]], method="auto")
        )
        assert spec.digest == expected

    def test_execution_strategy_is_invisible(self):
        base = parse_job_spec(matmul_spec())
        tweaked = parse_job_spec(
            matmul_spec(jobs=4, tenant="someone-else")
        )
        assert base.digest == tweaked.digest

    def test_spelled_out_defaults_digest_identically(self):
        assert (parse_job_spec(matmul_spec()).digest
                == parse_job_spec(matmul_spec(method="auto")).digest)

    def test_search_parameters_change_the_digest(self):
        base = parse_job_spec(matmul_spec())
        assert base.digest != parse_job_spec(
            matmul_spec(method="exact")
        ).digest
        assert base.digest != parse_job_spec(
            matmul_spec(mu=[5])
        ).digest
        assert base.digest != parse_job_spec({
            "task": "space", "algorithm": "matmul", "mu": [4],
            "pi": [1, 2, 3],
        }).digest


class TestRejections:
    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"task": "schedule"},
        {"task": "nonsense", "algorithm": "matmul", "mu": [4]},
        matmul_spec(surprise=1),
        matmul_spec(pi=[1, 2, 3]),          # pi is a space-task field
        {"task": "schedule", "algorithm": "matmul", "mu": [4]},  # no space
        {"task": "space", "algorithm": "matmul", "mu": [4]},     # no pi
        {"task": "schedule", "algorithm": "no-such-algo", "mu": [4],
         "space": [[1, 1, -1]]},
        {"task": "schedule", "algorithm": "matmul",
         "space": [[1, 1, -1]]},            # named without mu
        matmul_spec(method="guess"),
        matmul_spec(space=[[1, 1]]),        # wrong width
        matmul_spec(tenant=""),
        matmul_spec(tenant=7),
        matmul_spec(jobs=0),
        matmul_spec(jobs="two"),
        {"task": "space", "algorithm": "matmul", "mu": [4],
         "pi": [1, 2, 3], "array_dim": 0},
        {"task": "joint", "algorithm": "matmul", "mu": [4],
         "time_weight": "heavy"},
        {"task": "schedule", "algorithm": 42, "space": [[1, 1, -1]]},
        {"task": "schedule", "mu": [4],
         "algorithm": {"mu": [4, 4, 4], "dependence": [[1], [2]]},
         "space": [[1, 1, -1]]},            # mu alongside inline algorithm
    ])
    def test_bad_specs_raise_spec_errors(self, payload):
        with pytest.raises(SpecError):
            parse_job_spec(payload)


class TestEncodeResult:
    def test_schedule_encoding_is_deterministic_across_strategies(self):
        algo = matrix_multiplication(4)
        serial = explore_schedule(algo, [[1, 1, -1]], jobs=1)
        sharded = explore_schedule(algo, [[1, 1, -1]], jobs=2)
        assert (encode_result("schedule", serial)
                == encode_result("schedule", sharded))
        encoded = encode_result("schedule", serial)
        assert encoded["pi"] == [1, 2, 3]
        assert encoded["total_time"] == 25
        assert encoded["found"] is True

    def test_space_encoding_carries_ranking(self):
        algo = matrix_multiplication(3)
        result = explore_space(algo, [1, 3, 1], jobs=1)
        encoded = encode_result("space", result)
        assert encoded["found"] is True
        assert encoded["ranking"], "expected at least one design"
        top = encoded["ranking"][0]
        assert set(top) == {"space", "pi", "cost", "objective"}
        assert set(top["cost"]) == {
            "processors", "wire_length", "buffers", "total_time",
        }

    def test_not_found_has_no_pi(self):
        algo = matrix_multiplication(3)
        result = explore_schedule(
            algo, [[1, 1, -1]], jobs=1, initial_bound=1, max_bound=1
        )
        encoded = encode_result("schedule", result)
        assert encoded["found"] is False
        assert "pi" not in encoded
