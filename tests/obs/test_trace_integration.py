"""End-to-end tracing through the searches and the simulator.

The acceptance contract of the observability layer:

* a traced parallel search returns a result equal to the serial one
  (tracing is telemetry, never a semantic);
* the exported JSONL is schema-valid;
* the timing is one source of truth — the shard spans in the trace sum
  exactly to ``SearchStats.shard_wall_times`` and the root span *is*
  ``SearchStats.wall_time``.
"""

from __future__ import annotations

import pytest

from repro.core import MappingMatrix
from repro.core.optimize import procedure_5_1
from repro.dse import ResultCache, explore_schedule, explore_space
from repro.model import matrix_multiplication
from repro.obs import load_trace, trace_session
from repro.systolic import simulate_mapping

SPACE_51 = ((1, 1, -1),)  # Example 5.1's space mapping


@pytest.fixture
def matmul4():
    return matrix_multiplication(4)


class TestTracedScheduleSearch:
    def test_traced_parallel_equals_serial(self, matmul4, tmp_path):
        serial = procedure_5_1(matmul4, SPACE_51)
        with trace_session(tmp_path / "t.jsonl"):
            parallel = explore_schedule(matmul4, SPACE_51, jobs=4)
        assert parallel == serial

    def test_trace_is_schema_valid_and_timing_consistent(
        self, matmul4, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        with trace_session(path):
            result = explore_schedule(matmul4, SPACE_51, jobs=4)
        records = load_trace(path)  # raises on any schema problem
        spans = [r for r in records if r["type"] == "span"]

        shard_spans = [s for s in spans if s["name"] == "dse.shard"]
        assert shard_spans, "worker spans were not absorbed into the trace"
        assert sum(s["duration"] for s in shard_spans) == pytest.approx(
            sum(result.stats.shard_wall_times), rel=1e-9
        )

        [root] = [
            s for s in spans
            if s["name"] == "dse.explore_schedule" and s["parent_id"] is None
        ]
        assert root["duration"] == pytest.approx(
            result.stats.wall_time, rel=1e-9
        )

    def test_spans_form_one_tree_with_shard_tags(self, matmul4, tmp_path):
        path = tmp_path / "t.jsonl"
        with trace_session(path):
            explore_schedule(matmul4, SPACE_51, jobs=4)
        spans = [r for r in load_trace(path) if r["type"] == "span"]
        by_id = {s["span_id"]: s for s in spans}
        rings = [s for s in spans if s["name"] == "dse.ring"]
        assert rings
        for shard in (s for s in spans if s["name"] == "dse.shard"):
            assert "shard" in shard["attrs"]
            parent = by_id[shard["parent_id"]]
            assert parent["name"] == "dse.ring"

    def test_cache_events_reach_the_trace(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with trace_session(tmp_path / "cold.jsonl"):
            cold = explore_schedule(matmul4, SPACE_51, jobs=1, cache=cache)
        with trace_session(tmp_path / "warm.jsonl"):
            warm = explore_schedule(matmul4, SPACE_51, jobs=1, cache=cache)
        assert warm == cold
        cold_events = [
            r["name"] for r in load_trace(tmp_path / "cold.jsonl")
            if r["type"] == "event"
        ]
        warm_events = [
            r["name"] for r in load_trace(tmp_path / "warm.jsonl")
            if r["type"] == "event"
        ]
        assert "cache.miss" in cold_events
        assert "cache.hit" in warm_events

    def test_untraced_run_unchanged(self, matmul4):
        # The disabled path: no tracer configured, result still equal
        # and wall_time still populated (spans time themselves).
        result = explore_schedule(matmul4, SPACE_51, jobs=2)
        assert result == procedure_5_1(matmul4, SPACE_51)
        assert result.stats.wall_time > 0.0
        assert all(w > 0.0 for w in result.stats.shard_wall_times)


class TestTracedSpaceSearch:
    def test_traced_space_search_writes_root_span(self, matmul4, tmp_path):
        path = tmp_path / "s.jsonl"
        with trace_session(path):
            result = explore_space(matmul4, (1, 4, 1), jobs=2)
        spans = [r for r in load_trace(path) if r["type"] == "span"]
        [root] = [s for s in spans if s["name"] == "dse.explore_space"]
        assert root["duration"] == pytest.approx(
            result.stats.wall_time, rel=1e-9
        )
        assert any(s["name"] == "dse.shard" for s in spans)


class TestTracedSimulation:
    def test_simulation_phases_and_link_histogram(self, matmul4, tmp_path):
        t = MappingMatrix(space=SPACE_51, schedule=(1, 4, 1))
        path = tmp_path / "sim.jsonl"
        with trace_session(path):
            report = simulate_mapping(matmul4, t)
        assert report.ok
        records = load_trace(path)
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"systolic.simulate", "sim.place", "sim.route",
                "sim.fifo"} <= names
        [ev] = [
            r for r in records
            if r["type"] == "event" and r["name"] == "sim.link_utilization"
        ]
        assert ev["attrs"]["links"] > 0
        assert ev["attrs"]["max_tokens_per_link"] >= 1

    def test_procedure_5_1_root_span_is_wall_time(self, matmul4, tmp_path):
        path = tmp_path / "p.jsonl"
        with trace_session(path):
            result = procedure_5_1(matmul4, SPACE_51)
        spans = [r for r in load_trace(path) if r["type"] == "span"]
        [root] = [s for s in spans if s["name"] == "core.procedure_5_1"]
        assert root["duration"] == pytest.approx(
            result.stats.wall_time, rel=1e-9
        )
        assert any(s["name"] == "core.ring" for s in spans)
