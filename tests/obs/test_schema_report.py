"""Schema validator and report renderer (repro.obs.schema / .report)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Tracer,
    format_report,
    phase_breakdown,
    load_trace,
    validate_lines,
    validate_record,
)


def _valid_span(**over):
    rec = {
        "type": "span", "name": "s", "span_id": 1, "parent_id": None,
        "start_unix": 1.0, "duration": 0.5, "pid": 42, "attrs": {},
    }
    rec.update(over)
    return rec


class TestValidateRecord:
    def test_valid_span_passes(self):
        assert validate_record(_valid_span()) == []

    def test_missing_field_reported(self):
        rec = _valid_span()
        del rec["duration"]
        assert any("duration" in p for p in validate_record(rec))

    def test_wrong_type_reported(self):
        assert any(
            "duration" in p
            for p in validate_record(_valid_span(duration="fast"))
        )

    def test_negative_duration_reported(self):
        assert any(
            "negative" in p
            for p in validate_record(_valid_span(duration=-1.0))
        )

    def test_unknown_type_reported(self):
        assert validate_record({"type": "mystery"}) == [
            "unknown record type 'mystery'"
        ]

    def test_non_object_reported(self):
        assert validate_record([1, 2]) != []

    def test_bool_is_not_a_number(self):
        assert any(
            "bool" in p
            for p in validate_record(
                {"type": "counter", "name": "c", "value": True}
            )
        )


class TestValidateLines:
    def _trace_lines(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        return [
            json.dumps(r)
            for r in [tracer.meta_record(), *tracer.records()]
        ]

    def test_valid_stream(self):
        records, errors = validate_lines(self._trace_lines())
        assert errors == []
        assert records[0]["type"] == "meta"

    def test_must_start_with_meta(self):
        lines = self._trace_lines()[1:]
        _, errors = validate_lines(lines)
        assert any("meta" in e for e in errors)

    def test_dangling_parent_reported(self):
        lines = self._trace_lines()
        lines.append(json.dumps(_valid_span(span_id=99, parent_id=1234)))
        _, errors = validate_lines(lines)
        assert any("references no span" in e for e in errors)

    def test_bad_json_reported_with_line_number(self):
        lines = self._trace_lines() + ["{not json"]
        _, errors = validate_lines(lines)
        assert any(e.startswith(f"line {len(lines)}:") for e in errors)

    def test_load_trace_raises_on_invalid(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="invalid trace"):
            load_trace(path)


class TestReport:
    def _records(self):
        return [
            {"type": "meta", "schema": 1, "service": "repro", "pid": 1,
             "created_unix": 0.0},
            _valid_span(name="search", span_id=1, duration=2.5),
            _valid_span(name="ring", span_id=2, parent_id=1, duration=1.5),
            _valid_span(name="ring", span_id=3, parent_id=1, duration=0.5),
            {"type": "event", "name": "cache.hit", "time_unix": 0.0,
             "span_id": 1, "pid": 1, "attrs": {}},
            {"type": "counter", "name": "cache.hits", "value": 1},
        ]

    def test_phase_breakdown_groups_and_sorts(self):
        phases = phase_breakdown(self._records())
        assert [p.name for p in phases] == ["search", "ring"]
        ring = phases[1]
        assert ring.count == 2
        assert ring.total == 2.0
        assert ring.max == 1.5
        assert ring.share == pytest.approx(0.8)  # 2.0s over a 2.5s wall

    def test_wall_time_is_longest_root_span(self):
        phases = phase_breakdown(self._records())
        search = phases[0]
        assert search.share == pytest.approx(1.0)

    def test_format_report_renders_table_events_counters(self):
        text = format_report(self._records())
        assert "search" in text and "ring" in text
        assert "cache.hit: 1" in text
        assert "cache.hits: 1" in text
        assert "wall time" in text

    def test_top_limits_phases(self):
        text = format_report(self._records(), top=1)
        assert "search" in text
        # 'ring' appears only via the phase table, which was truncated.
        assert "\nring " not in text

    def test_empty_trace_reports_no_spans(self):
        text = format_report([self._records()[0]])
        assert "no spans recorded" in text
