"""Unit tests of the Span/Tracer mechanics (repro.obs.tracer)."""

from __future__ import annotations

import json
import threading

from repro.obs import (
    Span,
    Tracer,
    get_tracer,
    load_trace,
    set_tracer,
    trace_session,
)


class TestSpan:
    def test_span_times_even_without_tracer(self):
        with Span("standalone") as s:
            pass
        assert s.duration is not None and s.duration >= 0.0
        assert s.start_unix is not None

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work") as s:
            with tracer.span("inner"):
                pass
        assert s.duration is not None  # timing still happens
        assert s.span_id is None       # ...but no id was allocated
        tracer.event("boom")
        tracer.add("n")
        tracer.gauge("g", 1.0)
        assert tracer.records() == []

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        names = [r["name"] for r in tracer.records() if r["type"] == "span"]
        assert names == ["inner", "outer"]  # recorded at close, inner first

    def test_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("s", fixed=1) as s:
            s.set(late=2)
        [rec] = [r for r in tracer.records() if r["type"] == "span"]
        assert rec["attrs"] == {"fixed": 1, "late": 2}

    def test_exception_marks_span(self):
        tracer = Tracer()
        try:
            with tracer.span("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        [rec] = [r for r in tracer.records() if r["type"] == "span"]
        assert rec["attrs"]["error"] == "RuntimeError"

    def test_thread_local_stacks_nest_independently(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)
        seen = {}

        def run(tag):
            with tracer.span(f"root-{tag}") as root:
                barrier.wait()
                with tracer.span(f"child-{tag}") as child:
                    seen[tag] = (root, child)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for tag, (root, child) in seen.items():
            assert root.parent_id is None
            assert child.parent_id == root.span_id


class TestCountersEvents:
    def test_counters_aggregate(self):
        tracer = Tracer()
        tracer.add("hits")
        tracer.add("hits", 2)
        tracer.gauge("depth", 3)
        tracer.gauge("depth", 5)
        recs = tracer.records()
        [counter] = [r for r in recs if r["type"] == "counter"]
        [gauge] = [r for r in recs if r["type"] == "gauge"]
        assert counter == {"type": "counter", "name": "hits", "value": 3}
        assert gauge == {"type": "gauge", "name": "depth", "value": 5}

    def test_event_binds_to_active_span(self):
        tracer = Tracer()
        with tracer.span("op") as s:
            tracer.event("hit", key="k")
        [ev] = [r for r in tracer.records() if r["type"] == "event"]
        assert ev["span_id"] == s.span_id
        assert ev["attrs"] == {"key": "k"}


class TestAbsorb:
    def test_absorb_remaps_and_reparents(self):
        # A "worker" produces a standalone span tree with its own ids.
        with Span("shard", attrs={"kind": "x"}) as w:
            pass
        w.span_id = 1  # simulate a foreign id space colliding with ours
        foreign = [w.to_record()]

        tracer = Tracer()
        with tracer.span("parent") as p:
            tracer.absorb(foreign, shard=3)
        spans = {r["name"]: r for r in tracer.records() if r["type"] == "span"}
        absorbed = spans["shard"]
        assert absorbed["span_id"] != 1       # remapped into our id space
        assert absorbed["parent_id"] == p.span_id
        assert absorbed["attrs"] == {"kind": "x", "shard": 3}

    def test_absorb_preserves_foreign_structure(self):
        foreign = [
            {"type": "span", "name": "a", "span_id": 1, "parent_id": None,
             "start_unix": 0.0, "duration": 0.5, "pid": 1, "attrs": {}},
            {"type": "span", "name": "b", "span_id": 2, "parent_id": 1,
             "start_unix": 0.0, "duration": 0.25, "pid": 1, "attrs": {}},
        ]
        tracer = Tracer()
        with tracer.span("parent"):
            tracer.absorb(foreign, shard=0)
        spans = {r["name"]: r for r in tracer.records() if r["type"] == "span"}
        assert spans["b"]["parent_id"] == spans["a"]["span_id"]

    def test_absorb_noop_when_disabled_or_empty(self):
        tracer = Tracer(enabled=False)
        tracer.absorb([{"type": "span", "name": "x", "span_id": 1}])
        assert tracer.records() == []
        tracer2 = Tracer()
        tracer2.absorb(None)
        tracer2.absorb([])
        assert tracer2.records() == []


class TestExport:
    def test_write_jsonl_roundtrips_through_validator(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer()
        with tracer.span("root"):
            tracer.event("e")
            tracer.add("c")
        written = tracer.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == written
        assert json.loads(lines[0])["type"] == "meta"
        records = load_trace(path)  # raises if schema-invalid
        assert {r["type"] for r in records} == {"meta", "span", "event", "counter"}

    def test_appending_two_traces_stays_valid(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            tracer = Tracer()
            with tracer.span("root"):
                pass
            tracer.write_jsonl(path)
        records = load_trace(path)
        assert sum(1 for r in records if r["type"] == "meta") == 2


class TestGlobalTracer:
    def test_default_global_tracer_is_disabled(self):
        assert get_tracer().enabled is False

    def test_trace_session_restores_previous(self, tmp_path):
        before = get_tracer()
        path = tmp_path / "s.jsonl"
        with trace_session(path) as t:
            assert get_tracer() is t
            with t.span("inside"):
                pass
        assert get_tracer() is before
        assert any(r["name"] == "inside" for r in load_trace(path)
                   if r["type"] == "span")

    def test_set_tracer_returns_old(self):
        old = get_tracer()
        mine = Tracer()
        prev = set_tracer(mine)
        try:
            assert prev is old
            assert get_tracer() is mine
        finally:
            set_tracer(old)
