"""Property tests: symbolic answers are bit-identical to enumeration.

The symbolic compiler's contract is that ``SymbolicSolution.eval(mu)``
inside a certified interval reproduces the enumerative search exactly —
the same winner (which *is* the search's documented tie-break
selection: the head of the sorted tie set), the same total time, the
same found/not-found verdict.  These properties pin that on the paper's
two worked examples, Example 5.1 (matrix multiplication mapped by
``S = [1, 1, -1]``) and Example 5.2 (transitive closure mapped by
``S = [0, 0, 1]``), with sizes drawn from the certified range.
"""

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimize import find_all_optima, procedure_5_1
from repro.core.space_optimize import joint_objective, solve_joint_optimal
from repro.model import matrix_multiplication, transitive_closure
from repro.symbolic import (
    compile_joint,
    compile_schedule,
    family_from_algorithm,
)

MU_LO, MU_HI = 1, 10

#: (family seed, space mapping) of the paper's worked examples.
EXAMPLES = {
    "example-5.1": (matrix_multiplication, [[1, 1, -1]]),
    "example-5.2": (transitive_closure, [[0, 0, 1]]),
}


@lru_cache(maxsize=None)
def compiled_schedule(example: str):
    maker, space = EXAMPLES[example]
    family = family_from_algorithm(maker(4))
    solution = compile_schedule(family, space, mu_range=(MU_LO, MU_HI))
    return family, space, solution


@lru_cache(maxsize=None)
def compiled_joint(example: str):
    maker, _ = EXAMPLES[example]
    family = family_from_algorithm(maker(4))
    solution = compile_joint(family, mu_range=(2, 8))
    return family, solution


class TestScheduleEquivalence:
    @given(st.sampled_from(sorted(EXAMPLES)), st.integers(MU_LO, MU_HI))
    @settings(max_examples=30, deadline=None)
    def test_eval_matches_procedure_5_1(self, example, mu):
        family, space, solution = compiled_schedule(example)
        answer = solution.eval(mu)
        result = procedure_5_1(family.algorithm(mu), space)
        assert answer is not None, "size inside the range must be certified"
        assert answer.found == result.found
        if result.found:
            assert answer.pi == tuple(result.schedule.pi)
            assert answer.total_time == result.total_time

    @given(st.sampled_from(sorted(EXAMPLES)), st.integers(2, MU_HI))
    @settings(max_examples=15, deadline=None)
    def test_winner_heads_the_tie_order(self, example, mu):
        """The symbolic winner is the *first* co-optimal schedule in the
        search's documented sort order — tie-break preserved, not just
        some optimum."""
        family, space, solution = compiled_schedule(example)
        ties = find_all_optima(family.algorithm(mu), space)
        assert ties, "both examples have optima at every size >= 2"
        assert solution.eval(mu).pi == tuple(ties[0].schedule.pi)
        # ... and it really is optimal: no tie has a smaller time.
        assert all(
            t.total_time == solution.eval(mu).total_time for t in ties
        )

    @given(st.integers(MU_LO, MU_HI))
    @settings(max_examples=10, deadline=None)
    def test_interval_membership_is_consistent(self, mu):
        _, _, solution = compiled_schedule("example-5.1")
        interval = solution.interval_for(mu)
        assert interval is not None and interval.contains(mu)
        assert solution.eval(mu).interval == (interval.lo, interval.hi)


class TestJointEquivalence:
    @given(st.sampled_from(sorted(EXAMPLES)), st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_eval_matches_solve_joint_optimal(self, example, mu):
        family, solution = compiled_joint(example)
        answer = solution.eval(mu)
        result = solve_joint_optimal(family.algorithm(mu))
        assert answer is not None and answer.found and result.found
        best = result.best
        assert answer.pi == tuple(best.mapping.schedule)
        assert answer.space == tuple(
            tuple(int(x) for x in row) for row in best.mapping.space
        )
        cost = best.cost
        assert answer.cost == {
            "processors": cost.processors,
            "wire_length": cost.wire_length,
            "buffers": cost.buffers,
            "total_time": cost.total_time,
        }
        assert answer.objective == joint_objective(cost)


class TestCertificateHonesty:
    @given(st.integers(1, 3))
    @settings(max_examples=3, deadline=None)
    def test_outside_the_range_refuses_to_answer(self, delta):
        _, _, solution = compiled_schedule("example-5.1")
        assert solution.eval(MU_HI + delta) is None
        assert solution.eval(MU_LO - delta) is None

    def test_every_interval_endpoint_was_verified(self):
        for example in EXAMPLES:
            _, _, solution = compiled_schedule(example)
            for interval in solution.intervals:
                assert interval.lo in interval.verified
                assert interval.hi in interval.verified

    def test_coverage_is_total(self):
        for example in EXAMPLES:
            _, _, solution = compiled_schedule(example)
            assert solution.coverage == MU_HI - MU_LO + 1
