"""Property-based tests of the conflict theory against exact oracles.

The central quantified claims of the reproduction:

* the kernel-box decider agrees with brute force over all index points;
* Theorem 2.2's algebraic feasibility equals the geometric statement;
* Theorem 3.1 is exactly the truth for co-rank 1;
* the sufficient conditions of Section 4 never produce false positives;
* the necessary conditions never produce false negatives.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MappingMatrix,
    check_conflict_free,
    conflict_vector_corank1,
    conflict_vector_via_adjugate,
    is_conflict_free_bruteforce,
    is_conflict_free_kernel_box,
    is_feasible_conflict_vector,
    theorem_3_1,
    theorem_4_3,
    theorem_4_4,
)
from repro.intlin import rank
from repro.model import ConstantBoundedIndexSet


@st.composite
def mapping_and_mu(draw, k, n, magnitude=4, mu_max=3):
    entries = st.integers(-magnitude, magnitude)
    for _ in range(30):
        rows = draw(
            st.lists(
                st.lists(entries, min_size=n, max_size=n),
                min_size=k,
                max_size=k,
            )
        )
        if rank(rows) == k:
            mu = tuple(
                draw(st.integers(1, mu_max)) for _ in range(n)
            )
            return MappingMatrix.from_rows(rows), mu
    t = [[1 if j == i else 0 for j in range(n)] for i in range(k)]
    return MappingMatrix.from_rows(t), (1,) * n


class TestOracleAgreement:
    @given(mapping_and_mu(k=2, n=3))
    def test_corank1_kernel_box_equals_bruteforce(self, tm):
        t, mu = tm
        j = ConstantBoundedIndexSet(mu)
        assert is_conflict_free_kernel_box(t, mu) == is_conflict_free_bruteforce(t, j)

    @given(mapping_and_mu(k=2, n=4, mu_max=2))
    @settings(max_examples=40)
    def test_corank2_kernel_box_equals_bruteforce(self, tm):
        t, mu = tm
        j = ConstantBoundedIndexSet(mu)
        assert is_conflict_free_kernel_box(t, mu) == is_conflict_free_bruteforce(t, j)

    @given(mapping_and_mu(k=1, n=3, mu_max=2))
    def test_corank2_single_row(self, tm):
        t, mu = tm
        j = ConstantBoundedIndexSet(mu)
        assert is_conflict_free_kernel_box(t, mu) == is_conflict_free_bruteforce(t, j)


class TestTheorem22:
    @given(
        st.lists(st.integers(-6, 6), min_size=3, max_size=3),
        st.lists(st.integers(1, 4), min_size=3, max_size=3),
    )
    def test_algebraic_equals_geometric(self, gamma, mu):
        if all(g == 0 for g in gamma):
            return
        j = ConstantBoundedIndexSet(tuple(mu))
        assert is_feasible_conflict_vector(gamma, mu) == (
            not j.admits_translation(gamma)
        )


class TestTheorem31Exactness:
    @given(mapping_and_mu(k=2, n=3))
    def test_iff_against_oracle(self, tm):
        t, mu = tm
        assert theorem_3_1(t, mu).holds == is_conflict_free_kernel_box(t, mu)

    @given(mapping_and_mu(k=3, n=4, magnitude=3))
    @settings(max_examples=40)
    def test_iff_at_n4(self, tm):
        t, mu = tm
        assert theorem_3_1(t, mu).holds == is_conflict_free_kernel_box(t, mu)

    @given(mapping_and_mu(k=2, n=3))
    def test_adjugate_equals_hnf_route(self, tm):
        t, _mu = tm
        assert conflict_vector_via_adjugate(t) == conflict_vector_corank1(t)


class TestNecessaryConditions:
    @given(mapping_and_mu(k=2, n=4, mu_max=2))
    @settings(max_examples=60)
    def test_free_implies_43_and_44(self, tm):
        t, mu = tm
        if is_conflict_free_kernel_box(t, mu):
            assert theorem_4_3(t).holds
            assert theorem_4_4(t, mu).holds


class TestSufficientConditions:
    @given(mapping_and_mu(k=2, n=4, mu_max=2))
    @settings(max_examples=60)
    def test_auto_dispatch_is_exact(self, tm):
        t, mu = tm
        assert check_conflict_free(t, mu).holds == is_conflict_free_kernel_box(t, mu)

    @given(mapping_and_mu(k=2, n=5, magnitude=3, mu_max=2))
    @settings(max_examples=30)
    def test_auto_dispatch_exact_corank3(self, tm):
        t, mu = tm
        assert check_conflict_free(t, mu).holds == is_conflict_free_kernel_box(t, mu)

    @given(mapping_and_mu(k=2, n=4, mu_max=2))
    @settings(max_examples=60)
    def test_paper_47_sufficiency(self, tm):
        """Theorem 4.7 positive implies exact positive (co-rank 2)."""
        t, mu = tm
        from repro.core import theorem_4_7

        if theorem_4_7(t, mu).holds:
            assert is_conflict_free_kernel_box(t, mu)

    @given(mapping_and_mu(k=2, n=4, mu_max=2))
    @settings(max_examples=60)
    def test_45_sufficiency(self, tm):
        t, mu = tm
        from repro.core import theorem_4_5

        if theorem_4_5(t, mu).holds:
            assert is_conflict_free_kernel_box(t, mu)

    @given(mapping_and_mu(k=2, n=4, mu_max=2))
    @settings(max_examples=60)
    def test_46_sufficiency(self, tm):
        t, mu = tm
        from repro.core import theorem_4_6

        if theorem_4_6(t, mu).holds:
            assert is_conflict_free_kernel_box(t, mu)


class TestWitnessSoundness:
    @given(mapping_and_mu(k=2, n=3))
    def test_witness_exists_iff_conflicted(self, tm):
        from repro.core import find_conflict_witness

        t, mu = tm
        j = ConstantBoundedIndexSet(mu)
        w = find_conflict_witness(t, j)
        free = is_conflict_free_kernel_box(t, mu)
        assert (w is None) == free
        if w is not None:
            j1, j2 = w
            assert j1 != j2
            assert t.tau(j1) == t.tau(j2)
            assert j1 in j and j2 in j

    @given(mapping_and_mu(k=1, n=3, mu_max=2))
    @settings(max_examples=40)
    def test_witness_exists_iff_conflicted_corank2(self, tm):
        from repro.core import find_conflict_witness

        t, mu = tm
        j = ConstantBoundedIndexSet(mu)
        w = find_conflict_witness(t, j)
        assert (w is None) == is_conflict_free_kernel_box(t, mu)
        if w is not None:
            j1, j2 = w
            assert j1 != j2
            assert t.tau(j1) == t.tau(j2)
            assert j1 in j and j2 in j
