"""Property tests: the batched funnel is bit-identical to the scalar scan.

The batched candidate engine's whole contract is *invisibility*: for any
algorithm/space pair, ``procedure_5_1(batch=True)`` must return the same
winner, the same tie order, and the same deterministic counters as the
scalar loop — and the batch primitives must produce exact results on
both sides of the int64 promotion boundary.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import check_conflict_free
from repro.core.conflict import batch_distinct_image_counts
from repro.core.mapping import MappingMatrix
from repro.core.optimize import (
    BatchCandidateScanner,
    find_all_optima,
    procedure_5_1,
    ring_candidate_array,
)
from repro.core.schedule import LinearSchedule
from repro.core.space_optimize import (
    enumerate_space_mappings,
    evaluate_design,
    evaluate_designs_batched,
)
from repro.intlin import INT64_MAX, as_intmat, batch_matmul, batch_point_images
from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm


@st.composite
def algorithm_and_space(draw):
    """A random 2-D/3-D algorithm plus a random space mapping row set."""
    n = draw(st.integers(2, 3))
    mu = tuple(draw(st.integers(1, 3)) for _ in range(n))
    cols = [tuple(1 if i == j else 0 for i in range(n)) for j in range(n)]
    extra = tuple(draw(st.integers(-2, 2)) for _ in range(n))
    if extra != (0,) * n and extra not in cols:
        cols.append(extra)
    algo = UniformDependenceAlgorithm(
        index_set=ConstantBoundedIndexSet(mu),
        dependence_matrix=[list(row) for row in zip(*cols)],
        name=f"prop({mu})",
    )
    rows = draw(st.integers(1, n - 1))
    space = []
    for _ in range(rows):
        row = tuple(draw(st.integers(-2, 2)) for _ in range(n))
        space.append(row if any(row) else (1,) + (0,) * (n - 1))
    return algo, space


class TestSearchEquivalence:
    @given(algorithm_and_space())
    @settings(max_examples=40, deadline=None)
    def test_procedure_5_1_batched_equals_scalar(self, case):
        algo, space = case
        batched = procedure_5_1(algo, space, batch=True)
        scalar = procedure_5_1(algo, space, batch=False)
        # Dataclass equality covers winner, verdict, examined counts and
        # every deterministic SearchStats counter.
        assert batched == scalar
        assert batched.stats.counter_dict() == scalar.stats.counter_dict()
        assert scalar.stats.batches_evaluated == 0

    @given(algorithm_and_space())
    @settings(max_examples=15, deadline=None)
    def test_tie_order_preserved(self, case):
        algo, space = case
        batched = find_all_optima(algo, space, batch=True)
        scalar = find_all_optima(algo, space, batch=False)
        assert [r.schedule.pi for r in batched] == [
            r.schedule.pi for r in scalar
        ]

    @given(algorithm_and_space())
    @settings(max_examples=30, deadline=None)
    def test_scanner_stage_codes_match_scalar_funnel(self, case):
        algo, space = case
        f_max = sum(algo.mu) + 2
        pis = ring_candidate_array(algo.mu, f_max)
        scanner = BatchCandidateScanner(algo, space, batch_size=7)
        batched = [
            stage
            for _, stages in scanner.iter_stages(pis)
            for stage in stages
        ]
        k = len(space) + 1
        expected = []
        for row in pis:
            pi = tuple(int(v) for v in row)
            cand = LinearSchedule(pi=pi, index_set=algo.index_set)
            if not cand.respects(algo):
                expected.append("deps")
                continue
            t = MappingMatrix(space=space, schedule=pi)
            if t.rank() != k:
                expected.append("rank")
                continue
            holds = check_conflict_free(t, algo.mu, method="auto").holds
            expected.append("ok" if holds else "conflict")
        assert batched == expected


class TestSpaceEquivalence:
    @given(algorithm_and_space())
    @settings(max_examples=20, deadline=None)
    def test_design_batch_matches_scalar(self, case):
        algo, _ = case
        pi = tuple(1 for _ in range(algo.n))  # respects unit deps by design
        if not LinearSchedule(pi=pi, index_set=algo.index_set).respects(algo):
            return
        spaces = list(enumerate_space_mappings(algo.n, 1, 1))
        outcomes, batches, _promoted = evaluate_designs_batched(
            algo, spaces, pi
        )
        expected = [evaluate_design(algo, s, pi) for s in spaces]
        assert outcomes == expected
        assert batches >= 1


class TestPromotionBoundary:
    MAT = [[2, -1], [1, 3]]

    @given(st.lists(st.integers(-3, 3), min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_matmul_exact_across_boundary(self, offsets):
        # Rows sit within a few units of the certification threshold:
        # some certified, some promoted, all bit-exact.
        mat = as_intmat(self.MAT)
        thr = INT64_MAX // (mat.max_abs() * mat.nrows)
        rows = [[thr + off, -(thr + off) // 2] for off in offsets]
        out, promoted = batch_matmul(rows, self.MAT)
        cols = mat.columns()
        expected = [
            [sum(a * b for a, b in zip(row, col)) for col in cols]
            for row in rows
        ]
        assert [list(r) for r in out] == expected
        assert promoted == sum(
            1 for row in rows if max(abs(x) for x in row) > thr
        )

    @given(st.lists(st.integers(-3, 3), min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_point_images_exact_across_boundary(self, offsets):
        pts = np.array([[0, 0], [1, 2], [2, 1]], dtype=np.int64)
        thr = INT64_MAX // (2 * 2)  # pts_max=2, n=2
        vecs = [[thr + off, off] for off in offsets]
        images, promoted = batch_point_images(pts, vecs)
        expected = [
            [sum(int(p) * v for p, v in zip(pt, vec)) for vec in vecs]
            for pt in pts
        ]
        assert [list(r) for r in images] == expected
        assert promoted == sum(
            1 for vec in vecs if max(abs(x) for x in vec) > thr
        )

    @given(
        st.lists(
            st.tuples(st.integers(-4, 4), st.integers(-4, 4)),
            min_size=2,
            max_size=9,
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=60)
    def test_distinct_counts_match_set_semantics(self, pairs, n_cands):
        fixed = np.array([[a] for a, _ in pairs], dtype=np.int64)
        varying = np.empty((len(pairs), n_cands, 1), dtype=np.int64)
        for c in range(n_cands):
            varying[:, c, 0] = [b * (c + 1) for _, b in pairs]
        counts = batch_distinct_image_counts(fixed, varying)
        for c in range(n_cands):
            expected = len({(a, b * (c + 1)) for a, b in pairs})
            assert counts[c] == expected

    def test_distinct_counts_overflow_returns_sentinel(self):
        # Spans too wide to key into int64 must refuse (-1), never wrap.
        fixed = np.array([[0], [INT64_MAX - 1]], dtype=np.int64)
        varying = np.array(
            [[[0]], [[INT64_MAX - 1]]], dtype=np.int64
        )
        counts = batch_distinct_image_counts(fixed, varying)
        assert counts.tolist() == [-1]
