"""Property-based tests for the solver layer (ILP, Procedure 5.1, certificates).

Quantified cross-checks between independent solution paths:

* branch-and-bound vs exact vertex enumeration on random small ILPs;
* Procedure 5.1 optimality vs a brute-force sweep on random algorithms;
* every solver optimum carries a verifiable certificate.
"""


import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    MappingMatrix,
    certify_optimality,
    enumerate_schedule_vectors,
    is_conflict_free_kernel_box,
    procedure_5_1,
    verify_certificate,
)
from repro.ilp import (
    LinearProgram,
    best_integral_vertex,
    enumerate_vertices,
    solve_ilp,
    solve_lp_relaxation,
)
from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm


@st.composite
def small_bounded_ilp(draw):
    """A random bounded-feasible ILP in <= 3 variables."""
    n = draw(st.integers(1, 3))
    c = [draw(st.integers(-4, 4)) for _ in range(n)]
    m = draw(st.integers(1, 3))
    a_ub = [[draw(st.integers(-3, 3)) for _ in range(n)] for _ in range(m)]
    # Bound the box so the problem is always bounded and usually feasible.
    b_ub = [draw(st.integers(0, 8)) for _ in range(m)]
    bounds = [(0.0, 5.0)] * n
    return LinearProgram.build(
        [float(x) for x in c],
        a_ub=[[float(x) for x in row] for row in a_ub],
        b_ub=[float(x) for x in b_ub],
        bounds=bounds,
        integer=True,
    )


class TestILPProperties:
    @given(small_bounded_ilp())
    @settings(max_examples=50)
    def test_relaxation_bounds_ilp(self, prog):
        rel = solve_lp_relaxation(prog)
        ilp = solve_ilp(prog)
        if rel.status == "infeasible":
            assert ilp.status == "infeasible"
            return
        if ilp.status == "infeasible":
            return  # LP feasible, no lattice point: fine
        assert rel.objective <= ilp.objective + 1e-7

    @given(small_bounded_ilp())
    @settings(max_examples=50)
    def test_ilp_solution_feasible(self, prog):
        ilp = solve_ilp(prog)
        if ilp.ok:
            assert prog.is_feasible_point(ilp.x)
            assert all(
                float(v).is_integer() for v, flag in zip(ilp.x, prog.integer) if flag
            )

    @given(small_bounded_ilp())
    @settings(max_examples=40)
    def test_bb_beats_or_ties_every_integral_vertex(self, prog):
        """B&B must be at least as good as the appendix technique."""
        ilp = solve_ilp(prog)
        best_vertex = best_integral_vertex(prog)
        if best_vertex is None:
            return
        assume(ilp.ok)
        _point, obj = best_vertex
        assert ilp.objective <= float(obj) + 1e-7

    @given(small_bounded_ilp())
    @settings(max_examples=40)
    def test_vertices_feasible(self, prog):
        for v in enumerate_vertices(prog):
            point = [float(x) for x in v]
            assert prog.is_feasible_point(point, tol=1e-6)

    @given(small_bounded_ilp())
    @settings(max_examples=30)
    def test_integral_polytope_vertex_equals_bb(self, prog):
        """When all vertices are integral, the appendix technique is
        exactly optimal (its premise, quantified)."""
        verts = enumerate_vertices(prog)
        if not verts or any(
            x.denominator != 1 for v in verts for x in v
        ):
            return
        ilp = solve_ilp(prog)
        best = best_integral_vertex(prog)
        if not ilp.ok:
            return
        assert best is not None
        assert float(best[1]) == pytest.approx(ilp.objective)


@st.composite
def small_algorithm(draw):
    """A random 2-D algorithm with unit + one extra dependence."""
    mu = (draw(st.integers(1, 3)), draw(st.integers(1, 3)))
    extra = (draw(st.integers(0, 2)), draw(st.integers(-2, 2)))
    cols = [(1, 0), (0, 1)]
    if extra != (0, 0) and extra not in cols:
        cols.append(extra)
    dep_matrix = tuple(tuple(c[r] for c in cols) for r in range(2))
    return UniformDependenceAlgorithm(
        index_set=ConstantBoundedIndexSet(mu), dependence_matrix=dep_matrix
    )


class TestProcedureOptimality:
    @given(small_algorithm(), st.tuples(st.integers(-2, 2), st.integers(-2, 2)))
    @settings(max_examples=40)
    def test_first_survivor_is_global_optimum(self, algo, space_row):
        assume(any(space_row))
        res = procedure_5_1(algo, [list(space_row)], max_bound=60)
        if not res.found:
            return
        best_f = res.schedule.f
        # No strictly faster candidate survives all checks.
        for pi in enumerate_schedule_vectors(algo.mu, best_f - 1):
            if not algo.is_acyclic_under(pi):
                continue
            t = MappingMatrix(space=(tuple(space_row),), schedule=pi)
            if t.rank() != 2:
                continue
            assert not is_conflict_free_kernel_box(t, algo.mu)

    @given(small_algorithm(), st.tuples(st.integers(-2, 2), st.integers(-2, 2)))
    @settings(max_examples=25)
    def test_optimum_is_certifiable(self, algo, space_row):
        assume(any(space_row))
        res = procedure_5_1(algo, [list(space_row)], max_bound=60)
        if not res.found:
            return
        cert = certify_optimality(algo, [list(space_row)], res.schedule.pi)
        assert verify_certificate(algo, cert)
