"""Property-based tests of the Hermite/Smith machinery (hypothesis).

These are the foundation invariants the whole Section-4 theory rests
on; each property is quantified over randomly generated integer
matrices rather than hand-picked examples.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.intlin import (
    det_bareiss,
    gcd_list,
    hnf,
    identity,
    kernel_basis,
    matmul,
    matvec,
    rank,
    smith_normal_form,
    verify_hermite,
    verify_smith,
)


@st.composite
def full_rank_matrix(draw, max_k=3, max_n=5, magnitude=6):
    """A random full-row-rank integer matrix (k <= n)."""
    k = draw(st.integers(1, max_k))
    n = draw(st.integers(k, max_n))
    entries = st.integers(-magnitude, magnitude)
    for _ in range(30):
        m = draw(
            st.lists(
                st.lists(entries, min_size=n, max_size=n),
                min_size=k,
                max_size=k,
            )
        )
        if rank(m) == k:
            return m
    # Fall back to a guaranteed full-rank pattern: identity block.
    return [[1 if j == i else 0 for j in range(n)] for i in range(k)]


@st.composite
def any_matrix(draw, max_dim=4, magnitude=7):
    rows = draw(st.integers(1, max_dim))
    cols = draw(st.integers(1, max_dim))
    entries = st.integers(-magnitude, magnitude)
    return draw(
        st.lists(
            st.lists(entries, min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )


class TestHermiteProperties:
    @given(full_rank_matrix())
    def test_decomposition_invariants(self, t):
        res = hnf(t)
        assert verify_hermite(t, res)

    @given(full_rank_matrix())
    def test_multiplier_unimodular(self, t):
        res = hnf(t)
        assert det_bareiss(res.u) in (1, -1)
        assert matmul(res.u, res.v) == identity(len(res.u))

    @given(full_rank_matrix())
    def test_canonical_form_invariants(self, t):
        res = hnf(t, canonical=True)
        assert verify_hermite(t, res)
        k = res.rank
        for i in range(k):
            assert res.h[i][i] > 0
            for j in range(i):
                assert 0 <= res.h[i][j] < res.h[i][i]

    @given(full_rank_matrix())
    def test_kernel_annihilates_and_is_primitive(self, t):
        basis = kernel_basis(t)
        assert len(basis) == len(t[0]) - len(t)
        for vec in basis:
            assert all(x == 0 for x in matvec(t, vec))
            assert gcd_list(vec) == 1

    @given(full_rank_matrix(max_k=2, max_n=4, magnitude=4))
    def test_kernel_is_saturated(self, t):
        """Any integral kernel vector is an integral combination of the
        basis — the property Example 4.1 shows naive bases lack."""
        from repro.intlin import solve_diophantine

        basis = kernel_basis(t)
        if not basis:
            return
        n = len(t[0])
        mat = [[col[i] for col in basis] for i in range(n)]
        # Construct an arbitrary kernel vector via random combination,
        # then scale it down to primitive form: still representable.
        from repro.intlin import normalize_primitive

        combo = [0] * n
        for w, col in zip((3, -2, 5), basis):
            for i in range(n):
                combo[i] += w * col[i]
        if any(combo):
            prim = normalize_primitive(combo)
            assert solve_diophantine(mat, prim) is not None


class TestSmithProperties:
    @given(any_matrix())
    def test_decomposition_invariants(self, a):
        res = smith_normal_form(a)
        assert verify_smith(a, res)

    @given(any_matrix())
    def test_rank_agreement(self, a):
        assert smith_normal_form(a).rank == rank(a)

    @given(any_matrix(max_dim=3))
    def test_determinant_product_identity(self, a):
        """For square A: |det A| = product of invariant factors."""
        if len(a) != len(a[0]):
            return
        res = smith_normal_form(a)
        prod = 1
        for s in res.invariants:
            prod *= s
        if len(res.invariants) < len(a):
            assert det_bareiss(a) == 0
        else:
            assert prod == abs(det_bareiss(a))

    @given(any_matrix(max_dim=3, magnitude=5))
    def test_invariants_divisibility_chain(self, a):
        inv = smith_normal_form(a).invariants
        for x, y in zip(inv, inv[1:]):
            assert y % x == 0


class TestDeterminantProperties:
    @given(any_matrix(max_dim=4, magnitude=5))
    def test_transpose_invariance(self, a):
        if len(a) != len(a[0]):
            return
        from repro.intlin import transpose

        assert det_bareiss(a) == det_bareiss(transpose(a))

    @given(
        st.lists(
            st.lists(st.integers(-5, 5), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        ),
        st.lists(
            st.lists(st.integers(-5, 5), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        ),
    )
    def test_multiplicativity(self, a, b):
        assert det_bareiss(matmul(a, b)) == det_bareiss(a) * det_bareiss(b)
