"""Property-based tests for the boundary I/O schedule."""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import MappingMatrix, is_conflict_free_kernel_box
from repro.model import random_schedulable_algorithm
from repro.systolic import RoutingError, derive_io_schedule, simulate_mapping


@st.composite
def mapped_instance(draw):
    seed = draw(st.integers(0, 10_000))
    algo = random_schedulable_algorithm(
        random.Random(seed), n=3, m=3, mu_max=2, magnitude=1
    )
    pi = tuple(draw(st.integers(1, 4)) for _ in range(3))
    row = tuple(draw(st.integers(-1, 2)) for _ in range(3))
    assume(any(row))
    t = MappingMatrix(space=(row,), schedule=pi)
    assume(t.rank() == 2)
    assume(algo.is_acyclic_under(pi))
    return algo, t


class TestIOInvariants:
    @given(mapped_instance())
    @settings(max_examples=40)
    def test_injection_count_equals_boundary_consumers(self, inst):
        algo, t = inst
        try:
            io = derive_io_schedule(algo, t)
        except RoutingError:
            return
        expected = 0
        for j in algo.index_set:
            for d in algo.dependence_vectors():
                pred = tuple(a - b for a, b in zip(j, d))
                if pred not in algo.index_set:
                    expected += 1
        assert len(io.injections) == expected

    @given(mapped_instance())
    @settings(max_examples=40)
    def test_drain_count_equals_chain_ends(self, inst):
        algo, t = inst
        try:
            io = derive_io_schedule(algo, t)
        except RoutingError:
            return
        expected = 0
        for j in algo.index_set:
            for d in algo.dependence_vectors():
                succ = tuple(a + b for a, b in zip(j, d))
                if succ not in algo.index_set:
                    expected += 1
        assert len(io.drains) == expected

    @given(mapped_instance())
    @settings(max_examples=40)
    def test_conflict_free_implies_no_port_contention(self, inst):
        algo, t = inst
        if not is_conflict_free_kernel_box(t, algo.mu):
            return
        try:
            io = derive_io_schedule(algo, t)
        except RoutingError:
            return
        assert io.port_conflicts() == []

    @given(mapped_instance())
    @settings(max_examples=30)
    def test_injections_never_late(self, inst):
        """Every injection lands at or before its consumer's cycle."""
        algo, t = inst
        try:
            io = derive_io_schedule(algo, t)
        except RoutingError:
            return
        for e in io.injections:
            assert e.time <= t.time(e.point)

    @given(mapped_instance())
    @settings(max_examples=25)
    def test_io_consistent_with_simulation(self, inst):
        """The simulator and the I/O schedule must agree on cleanliness
        for conflict-free mappings."""
        algo, t = inst
        if not is_conflict_free_kernel_box(t, algo.mu):
            return
        try:
            report = simulate_mapping(algo, t)
        except RoutingError:
            return
        io = derive_io_schedule(algo, t, plan=report.plan)
        assert report.conflicts == ()
        assert io.port_conflicts() == []
