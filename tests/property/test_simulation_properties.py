"""Property-based tests linking the theory to the behavioral simulator.

The strongest claim in the reproduction: for random algorithms and
random valid mappings, *the lattice theory and the cycle-accurate
simulation always agree* — a mapping is certified conflict-free iff the
simulated array never double-books a (PE, cycle) slot, and the
realized makespan is exactly Equation 2.7's closed form.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MappingMatrix, is_conflict_free_kernel_box
from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm
from repro.systolic import RoutingError, simulate_mapping


@st.composite
def algorithm_and_mapping(draw):
    """A random small 2-D/3-D algorithm plus a dependence-valid mapping."""
    n = draw(st.integers(2, 3))
    mu = tuple(draw(st.integers(1, 3)) for _ in range(n))
    index_set = ConstantBoundedIndexSet(mu)

    # Unit dependence vectors guarantee positive schedules exist.
    dep_cols = [tuple(1 if r == c else 0 for r in range(n)) for c in range(n)]
    dep_matrix = tuple(tuple(col[r] for col in dep_cols) for r in range(n))
    algo = UniformDependenceAlgorithm(
        index_set=index_set, dependence_matrix=dep_matrix
    )

    pi = tuple(draw(st.integers(1, 5)) for _ in range(n))
    space_row = tuple(draw(st.integers(-2, 2)) for _ in range(n))
    t = MappingMatrix(space=(space_row,), schedule=pi)
    return algo, t


class TestTheorySimulationAgreement:
    @given(algorithm_and_mapping())
    @settings(max_examples=50)
    def test_conflicts_iff_theory_says_so(self, am):
        algo, t = am
        if t.rank() != t.k:
            return
        try:
            report = simulate_mapping(algo, t)
        except RoutingError:
            return  # schedule too tight for the displacement: no claim
        free = is_conflict_free_kernel_box(t, algo.mu)
        assert (len(report.conflicts) == 0) == free

    @given(algorithm_and_mapping())
    @settings(max_examples=50)
    def test_makespan_is_equation_2_7(self, am):
        algo, t = am
        if t.rank() != t.k:
            return
        try:
            report = simulate_mapping(algo, t)
        except RoutingError:
            return
        expected = 1 + sum(abs(p) * m for p, m in zip(t.schedule, algo.mu))
        assert report.makespan == expected

    @given(algorithm_and_mapping())
    @settings(max_examples=50)
    def test_no_latency_violations_under_eq_2_3(self, am):
        """Whenever planning succeeds, Equation 2.3 holds, so no operand
        can arrive late."""
        algo, t = am
        if t.rank() != t.k:
            return
        try:
            report = simulate_mapping(algo, t)
        except RoutingError:
            return
        assert report.latency_violations == ()

    @given(algorithm_and_mapping())
    @settings(max_examples=50)
    def test_buffer_occupancy_bounded_by_plan(self, am):
        """For conflict-free mappings, peak FIFO occupancy never exceeds
        the planned buffer depth plus one in-transit slot (a conflicted
        mapping can legitimately pile several tokens into one slot)."""
        algo, t = am
        if t.rank() != t.k:
            return
        if not is_conflict_free_kernel_box(t, algo.mu):
            return
        try:
            report = simulate_mapping(algo, t)
        except RoutingError:
            return
        for channel, peak in enumerate(report.max_buffer_occupancy):
            assert peak <= report.plan.buffers[channel] + 1

    @given(algorithm_and_mapping())
    @settings(max_examples=50)
    def test_computation_conservation(self, am):
        """Every index point is executed exactly once (counting
        collisions as multiple points in one slot)."""
        algo, t = am
        if t.rank() != t.k:
            return
        try:
            report = simulate_mapping(algo, t)
        except RoutingError:
            return
        assert report.num_computations == len(algo.index_set)
