"""Property-based tests for the design-space layer (Problems 6.1/6.2).

Quantified soundness of the optimizers and the alignment preprocessor.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    is_conflict_free_kernel_box,
    solve_space_optimal,
)
from repro.model import (
    StatementDependence,
    align_statements,
    random_schedulable_algorithm,
)
from repro.model.algorithm import DependenceError


class TestSpaceOptimalSoundness:
    @given(st.integers(0, 500))
    @settings(max_examples=25)
    def test_best_design_dominates_nothing_cheaper(self, seed):
        """The winner's objective is <= every ranked design's; every
        ranked design is genuinely conflict-free."""
        algo = random_schedulable_algorithm(
            random.Random(seed), n=3, m=3, mu_max=2, magnitude=1
        )
        # A schedule that respects D exists by construction; derive one.
        from repro.core import optimal_free_schedule

        pi = optimal_free_schedule(algo).schedule.pi
        res = solve_space_optimal(algo, pi, keep_ranking=20)
        if not res.found:
            return
        objectives = [d.objective for d in res.ranking]
        assert res.best.objective == min(objectives)
        for d in res.ranking:
            assert is_conflict_free_kernel_box(d.mapping, algo.mu)

    @given(st.integers(0, 500))
    @settings(max_examples=15)
    def test_ranking_is_sorted(self, seed):
        algo = random_schedulable_algorithm(
            random.Random(seed), n=3, m=2, mu_max=2, magnitude=1
        )
        from repro.core import optimal_free_schedule

        pi = optimal_free_schedule(algo).schedule.pi
        res = solve_space_optimal(algo, pi, keep_ranking=20)
        objs = [d.objective for d in res.ranking]
        assert objs == sorted(objs)


@st.composite
def alignment_instance(draw):
    """Random 2-statement instance over a 2-D nest."""
    deps = []
    num = draw(st.integers(1, 3))
    for _ in range(num):
        deps.append(
            StatementDependence(
                source=draw(st.integers(0, 1)),
                target=draw(st.integers(0, 1)),
                distance=(
                    draw(st.integers(-2, 2)),
                    draw(st.integers(-2, 2)),
                ),
            )
        )
    return deps


class TestAlignmentProperties:
    @given(alignment_instance())
    @settings(max_examples=50)
    def test_alignment_output_always_legal(self, deps):
        try:
            res = align_statements(2, 2, (3, 3), deps)
        except DependenceError:
            return  # unalignable instances are a legal outcome
        for d in res.aligned_distances:
            first = next((x for x in d if x != 0), 0)
            assert first > 0  # lexicographically positive

    @given(alignment_instance())
    @settings(max_examples=50)
    def test_offsets_cancel_around_cycles(self, deps):
        """The aligned distance sum around any dependence cycle equals
        the raw distance sum (offsets are a potential function)."""
        try:
            res = align_statements(2, 2, (3, 3), deps)
        except DependenceError:
            return
        # Check the potential property dependence by dependence.
        for dep, aligned in zip(deps, res.aligned_distances):
            o_src = res.offsets[dep.source]
            o_tgt = res.offsets[dep.target]
            reconstructed = tuple(
                e + ot - os_
                for e, os_, ot in zip(dep.distance, o_src, o_tgt)
            )
            assert reconstructed == aligned

    @given(alignment_instance())
    @settings(max_examples=30)
    def test_statement_zero_pinned(self, deps):
        try:
            res = align_statements(2, 2, (3, 3), deps)
        except DependenceError:
            return
        assert res.offsets[0] == (0, 0)

    @given(alignment_instance())
    @settings(max_examples=30)
    def test_unalignable_iff_no_offset_in_box(self, deps):
        """Alignment fails exactly when no offset in the search box
        relocates every dependence to a lexicographically positive
        distance.  (A lex-positive cycle sum is NOT sufficient: the
        2-cycle (0,0) / (0,1) sums to (0,1), which cannot be split into
        two lex-positive distances.)"""
        import itertools

        def lex_positive(v):
            for x in v:
                if x > 0:
                    return True
                if x < 0:
                    return False
            return False

        def feasible(o1):
            for d in deps:
                o_src = (0, 0) if d.source == 0 else o1
                o_tgt = (0, 0) if d.target == 0 else o1
                relocated = tuple(
                    e + t - s for e, s, t in zip(d.distance, o_src, o_tgt)
                )
                if not lex_positive(relocated):
                    return False
            return True

        bound = 8
        box_has_solution = any(
            feasible(o1)
            for o1 in itertools.product(range(-bound, bound + 1), repeat=2)
        )
        try:
            align_statements(2, 2, (3, 3), deps, offset_bound=bound)
            aligned = True
        except DependenceError:
            aligned = False
        assert aligned == box_has_solution
