"""Property-based tests for the design-space layer (Problems 6.1/6.2).

Quantified soundness of the optimizers and the alignment preprocessor.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    is_conflict_free_kernel_box,
    solve_space_optimal,
)
from repro.model import (
    StatementDependence,
    align_statements,
    random_schedulable_algorithm,
)
from repro.model.algorithm import DependenceError


class TestSpaceOptimalSoundness:
    @given(st.integers(0, 500))
    @settings(max_examples=25)
    def test_best_design_dominates_nothing_cheaper(self, seed):
        """The winner's objective is <= every ranked design's; every
        ranked design is genuinely conflict-free."""
        algo = random_schedulable_algorithm(
            random.Random(seed), n=3, m=3, mu_max=2, magnitude=1
        )
        # A schedule that respects D exists by construction; derive one.
        from repro.core import optimal_free_schedule

        pi = optimal_free_schedule(algo).schedule.pi
        res = solve_space_optimal(algo, pi, keep_ranking=20)
        if not res.found:
            return
        objectives = [d.objective for d in res.ranking]
        assert res.best.objective == min(objectives)
        for d in res.ranking:
            assert is_conflict_free_kernel_box(d.mapping, algo.mu)

    @given(st.integers(0, 500))
    @settings(max_examples=15)
    def test_ranking_is_sorted(self, seed):
        algo = random_schedulable_algorithm(
            random.Random(seed), n=3, m=2, mu_max=2, magnitude=1
        )
        from repro.core import optimal_free_schedule

        pi = optimal_free_schedule(algo).schedule.pi
        res = solve_space_optimal(algo, pi, keep_ranking=20)
        objs = [d.objective for d in res.ranking]
        assert objs == sorted(objs)


@st.composite
def alignment_instance(draw):
    """Random 2-statement instance over a 2-D nest."""
    deps = []
    num = draw(st.integers(1, 3))
    for _ in range(num):
        deps.append(
            StatementDependence(
                source=draw(st.integers(0, 1)),
                target=draw(st.integers(0, 1)),
                distance=(
                    draw(st.integers(-2, 2)),
                    draw(st.integers(-2, 2)),
                ),
            )
        )
    return deps


class TestAlignmentProperties:
    @given(alignment_instance())
    @settings(max_examples=50)
    def test_alignment_output_always_legal(self, deps):
        try:
            res = align_statements(2, 2, (3, 3), deps)
        except DependenceError:
            return  # unalignable instances are a legal outcome
        for d in res.aligned_distances:
            first = next((x for x in d if x != 0), 0)
            assert first > 0  # lexicographically positive

    @given(alignment_instance())
    @settings(max_examples=50)
    def test_offsets_cancel_around_cycles(self, deps):
        """The aligned distance sum around any dependence cycle equals
        the raw distance sum (offsets are a potential function)."""
        try:
            res = align_statements(2, 2, (3, 3), deps)
        except DependenceError:
            return
        # Check the potential property dependence by dependence.
        for dep, aligned in zip(deps, res.aligned_distances):
            o_src = res.offsets[dep.source]
            o_tgt = res.offsets[dep.target]
            reconstructed = tuple(
                e + ot - os_
                for e, os_, ot in zip(dep.distance, o_src, o_tgt)
            )
            assert reconstructed == aligned

    @given(alignment_instance())
    @settings(max_examples=30)
    def test_statement_zero_pinned(self, deps):
        try:
            res = align_statements(2, 2, (3, 3), deps)
        except DependenceError:
            return
        assert res.offsets[0] == (0, 0)

    @given(alignment_instance())
    @settings(max_examples=30)
    def test_unalignable_iff_nonpositive_cycle(self, deps):
        """If alignment fails inside a generous box, some dependence
        cycle has a lexicographically non-positive distance sum (the
        invariance obstruction)."""
        try:
            align_statements(2, 2, (3, 3), deps, offset_bound=8)
            return  # aligned fine
        except DependenceError:
            pass
        # Look for an obstruction: a cycle 0->1->0 (or self-loop) whose
        # total distance is lexicographically non-positive.
        import itertools

        def lex_positive(v):
            for x in v:
                if x > 0:
                    return True
                if x < 0:
                    return False
            return False

        self_loops = [
            d for d in deps if d.source == d.target
        ]
        cross_01 = [d for d in deps if (d.source, d.target) == (0, 1)]
        cross_10 = [d for d in deps if (d.source, d.target) == (1, 0)]
        obstruction = any(
            not lex_positive(d.distance) for d in self_loops
        ) or any(
            not lex_positive(
                tuple(x + y for x, y in zip(a.distance, b.distance))
            )
            for a, b in itertools.product(cross_01, cross_10)
        )
        assert obstruction
