"""Property-based tests for the IntMat kernel's two backends.

The central claim of the checked fast path is *semantic invisibility*:
whatever the entry magnitudes, the int64-vectorized route and the
arbitrary-precision object route compute identical values, and the
value-type contract (equality, hashing, pickling) never depends on
which backend a matrix happens to sit on.  Entry strategies straddle
the promotion boundary on purpose: small ints, 32-bit-scale ints, and
ints within a few bits of 2**63.
"""

import pickle

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.intlin import (
    IntMat,
    hnf,
    smith_normal_form,
    verify_hermite,
    verify_smith,
)

# Magnitudes chosen to land matrices on both sides of every guard:
# always-fast, fast-until-multiplied, and born-exact (> int64).
_entries = st.one_of(
    st.integers(-9, 9),
    st.integers(-(2**31) - 3, 2**31 + 3),
    st.integers(2**61, 2**63 + 2),
    st.integers(-(2**63) - 2, -(2**61)),
)


def _square(side):
    return st.lists(
        st.lists(_entries, min_size=side, max_size=side),
        min_size=side,
        max_size=side,
    )


square_2 = _square(2)
square_3 = _square(3)


class TestBackendAgreement:
    @given(square_3)
    @settings(max_examples=60)
    def test_det_identical(self, rows):
        assert IntMat(rows).det() == IntMat(rows, exact=True).det()

    @given(square_3)
    @settings(max_examples=40)
    def test_adjugate_identical(self, rows):
        assert IntMat(rows).adjugate() == IntMat(rows, exact=True).adjugate()

    @given(square_2, square_2)
    @settings(max_examples=60)
    def test_product_identical_and_exact(self, a_rows, b_rows):
        a, b = IntMat(a_rows), IntMat(b_rows)
        product = a.mul(b)
        reference = [
            [
                sum(a_rows[i][t] * b_rows[t][j] for t in range(2))
                for j in range(2)
            ]
            for i in range(2)
        ]
        assert product == reference
        assert product == a.to_exact().mul(b.to_exact())

    @given(square_2)
    @settings(max_examples=40)
    def test_rank_identical(self, rows):
        assert IntMat(rows).rank() == IntMat(rows, exact=True).rank()

    @given(square_3)
    @settings(max_examples=25)
    def test_hnf_identical_and_verified(self, rows):
        assume(IntMat(rows).rank() == len(rows))  # hnf requires full row rank
        fast = hnf(IntMat(rows))
        exact = hnf(IntMat(rows, exact=True))
        assert fast.h == exact.h
        assert fast.u == exact.u
        assert fast.rank == exact.rank
        assert verify_hermite(rows, fast)

    @given(square_2)
    @settings(max_examples=25)
    def test_smith_identical_and_verified(self, rows):
        fast = smith_normal_form(IntMat(rows))
        exact = smith_normal_form(IntMat(rows, exact=True))
        assert fast.d == exact.d
        assert fast.invariants == exact.invariants
        assert verify_smith(rows, fast)


class TestValueContract:
    @given(square_2)
    @settings(max_examples=60)
    def test_hash_equals_plain_tuple_hash(self, rows):
        m = IntMat(rows)
        assert hash(m) == hash(tuple(tuple(r) for r in rows))
        assert m == IntMat(rows, exact=True)
        assert hash(m) == hash(IntMat(rows, exact=True))

    @given(square_2)
    @settings(max_examples=40)
    def test_pickle_roundtrip_preserves_identity(self, rows):
        m = IntMat(rows)
        n = pickle.loads(pickle.dumps(m))
        assert isinstance(n, IntMat)
        assert n == m
        assert hash(n) == hash(m)
        assert n.digest() == m.digest()

    @given(square_2)
    @settings(max_examples=40)
    def test_det_is_cached_and_stable(self, rows):
        m = IntMat(rows)
        assert m.det() == m.det()
        assert m.det() == IntMat(m.rows()).det()
