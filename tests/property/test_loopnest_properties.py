"""Property-based tests for the loop-nest front-end.

Round-trip invariant: a uniform self-dependence rendered as subscript
expressions and re-extracted recovers the original vector; input-stream
directions always annihilate the access map.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.model import Access, LoopNest
from repro.model.loopnest import parse_affine

INDICES = ("i", "j", "k")


def offset_expr(idx: str, off: int) -> str:
    if off == 0:
        return idx
    return f"{idx}{'+' if off > 0 else '-'}{abs(off)}"


@st.composite
def dependence_vector(draw):
    v = tuple(draw(st.integers(-3, 3)) for _ in range(3))
    assume(any(v))
    return v


class TestRoundTrip:
    @given(dependence_vector())
    @settings(max_examples=60)
    def test_self_dependence_round_trip(self, d):
        """write v[i,j,k], read v[i-d1, j-d2, k-d3] -> extract d."""
        nest = LoopNest(indices=INDICES, bounds=(4, 4, 4))
        write = Access("v", INDICES)
        read = Access(
            "v",
            tuple(offset_expr(idx, -di) for idx, di in zip(INDICES, d)),
        )
        assert nest.self_dependence(write, read) == d

    @given(dependence_vector(), dependence_vector())
    @settings(max_examples=40)
    def test_offsets_compose(self, d, e):
        """Offsets on both sides: extracted vector is the difference."""
        nest = LoopNest(indices=INDICES, bounds=(4, 4, 4))
        write = Access(
            "v", tuple(offset_expr(idx, ei) for idx, ei in zip(INDICES, e))
        )
        read = Access(
            "v",
            tuple(
                offset_expr(idx, ei - di)
                for idx, ei, di in zip(INDICES, e, d)
            ),
        )
        assert nest.self_dependence(write, read) == d


class TestParseAffineProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(INDICES), st.integers(1, 3)),
            min_size=1,
            max_size=3,
        ),
        st.integers(-5, 5),
    )
    @settings(max_examples=60)
    def test_rebuild_and_parse(self, terms, const):
        """Render coefficients as an expression; parsing recovers them."""
        parts = []
        for idx, coef in terms:
            parts.append(f"+ {coef}*{idx}" if parts else f"{coef}*{idx}")
        if const:
            parts.append(f"+ {const}" if const > 0 else f"- {abs(const)}")
        expr = " ".join(parts)
        coeffs, c = parse_affine(expr, INDICES)
        expected: dict[str, int] = {}
        for idx, coef in terms:
            expected[idx] = expected.get(idx, 0) + coef
        assert coeffs == expected
        assert c == const


class TestStreamDirections:
    @given(st.sampled_from(INDICES), st.sampled_from(INDICES))
    @settings(max_examples=30)
    def test_two_index_access_direction_annihilates(self, a, b):
        """For a[x, y] with distinct indices the pipelining direction is
        in the kernel of the access map."""
        assume(a != b)
        nest = LoopNest(indices=INDICES, bounds=(4, 4, 4))
        d = nest.input_stream_direction(Access("arr", (a, b)))
        # Build the access rows and verify orthogonality.
        for sub in (a, b):
            row = [1 if idx == sub else 0 for idx in INDICES]
            assert sum(r * x for r, x in zip(row, d)) == 0
        assert any(d)

    @given(st.sampled_from(INDICES), st.sampled_from(INDICES))
    @settings(max_examples=30)
    def test_difference_access_direction(self, a, b):
        """x[a - b] reuse direction is orthogonal to the access row."""
        assume(a != b)
        nest = LoopNest(indices=INDICES, bounds=(4, 4, 4))
        try:
            d = nest.input_stream_direction(Access("x", (f"{a} - {b}",)))
        except Exception:
            # a 1-row access over 3 indices has a 2-D reuse space:
            # ambiguity is a legal outcome the API reports.
            return
        row = [0, 0, 0]
        row[INDICES.index(a)] = 1
        row[INDICES.index(b)] = -1
        assert sum(r * x for r, x in zip(row, d)) == 0
