"""Property tests: symmetry/ring-bound pruning is bit-identical.

The pruning layer's whole contract is *invisibility*: for any
algorithm/space pair, ``procedure_5_1`` with orbit collapsing and/or
the LP-relaxation ring bound enabled must return the same winner, the
same total time, the same verdict, the same deterministic counters and
the same ``find_all_optima`` tie list (in sort-key order) as the
unpruned scan — on the paper's Examples 5.1/5.2, on randomized uniform
dependence algorithms, and through the parallel engine.  Pruning may
only change the telemetry that says how much work was avoided.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.ilp_formulation as ilp_formulation
from repro import matrix_multiplication, transitive_closure
from repro.core.optimize import find_all_optima, procedure_5_1
from repro.core.symmetry import symmetry_group_for
from repro.dse.executor import explore_schedule
from repro.model import ConstantBoundedIndexSet, UniformDependenceAlgorithm
from repro.obs import trace_session

# Every pruning configuration that differs from the baseline (off, off).
PRUNED_CONFIGS = [
    {"symmetry": True, "ring_bound": True},
    {"symmetry": True, "ring_bound": False},
    {"symmetry": False, "ring_bound": True},
]
BASELINE = {"symmetry": False, "ring_bound": False}


@st.composite
def algorithm_and_space(draw):
    """A random 2-D/3-D algorithm plus a random space mapping row set."""
    n = draw(st.integers(2, 3))
    mu = tuple(draw(st.integers(1, 3)) for _ in range(n))
    cols = [tuple(1 if i == j else 0 for i in range(n)) for j in range(n)]
    extra = tuple(draw(st.integers(-2, 2)) for _ in range(n))
    if extra != (0,) * n and extra not in cols:
        cols.append(extra)
    algo = UniformDependenceAlgorithm(
        index_set=ConstantBoundedIndexSet(mu),
        dependence_matrix=[list(row) for row in zip(*cols)],
        name=f"prop({mu})",
    )
    rows = draw(st.integers(1, n - 1))
    space = []
    for _ in range(rows):
        row = tuple(draw(st.integers(-2, 2)) for _ in range(n))
        space.append(row if any(row) else (1,) + (0,) * (n - 1))
    return algo, space


def assert_equivalent(algo, space, **kwargs):
    """Pruned == unpruned, full dataclass + deterministic counters."""
    base = procedure_5_1(algo, space, **BASELINE, **kwargs)
    for config in PRUNED_CONFIGS:
        pruned = procedure_5_1(algo, space, **config, **kwargs)
        # Dataclass equality covers winner, verdict, examined counts and
        # every deterministic SearchStats counter.
        assert pruned == base, config
        assert pruned.stats.counter_dict() == base.stats.counter_dict(), config
    return base


class TestPaperExamples:
    """Examples 5.1 (matmul) and 5.2 (transitive closure)."""

    CASES = [
        (matrix_multiplication(4), ((1, 1, -1),)),
        (matrix_multiplication(6), ((1, 1, -1),)),
        (transitive_closure(4), ((0, 0, 1),)),
        (transitive_closure(5), ((0, 0, 1),)),
    ]

    @pytest.mark.parametrize("algo,space", CASES, ids=lambda c: getattr(c, "name", None))
    def test_procedure_5_1_equivalence(self, algo, space):
        base = assert_equivalent(algo, space)
        assert base.found

    @pytest.mark.parametrize("algo,space", CASES, ids=lambda c: getattr(c, "name", None))
    def test_scalar_path_equivalence(self, algo, space):
        assert_equivalent(algo, space, batch=False)

    @pytest.mark.parametrize("algo,space", CASES, ids=lambda c: getattr(c, "name", None))
    def test_tie_set_identical_in_sort_key_order(self, algo, space):
        base = find_all_optima(algo, space, symmetry=False, ring_bound=False)
        pruned = find_all_optima(algo, space, symmetry=True, ring_bound=True)
        assert [r.schedule.pi for r in pruned] == [
            r.schedule.pi for r in base
        ]

    def test_matmul_orbits_actually_collapse(self):
        """The telemetry proves the pruning ran, not just that it was on."""
        algo = matrix_multiplication(6)
        space = ((1, 1, -1),)
        group = symmetry_group_for(algo, space)
        assert group.order > 1  # swapping the first two indices fixes (mu, D, S)
        res = procedure_5_1(algo, space)
        assert res.stats.orbits_collapsed > 0
        assert res.stats.rings_bounded_out > 0
        seed = procedure_5_1(algo, space, **BASELINE)
        assert seed.stats.orbits_collapsed == 0
        assert seed.stats.candidates_skipped == 0
        # The acceptance bar: >= 2x fewer conflict screens with pruning on.
        assert seed.stats.conflict_screens >= 2 * res.stats.conflict_screens

    def test_tie_list_rehydrates_whole_orbits(self):
        """Ties include orbit members the pruned scan never evaluated."""
        algo = matrix_multiplication(6)
        space = ((1, 1, -1),)
        group = symmetry_group_for(algo, space)
        ties = [
            r.schedule.pi
            for r in find_all_optima(algo, space, symmetry=True)
        ]
        tie_set = set(ties)
        assert len(ties) == len(tie_set)
        for pi in ties:
            for mat in group.mats:
                image = tuple(
                    int(v)
                    for v in (
                        sum(pi[i] * int(mat[i][j]) for i in range(len(pi)))
                        for j in range(len(pi))
                    )
                )
                assert image in tie_set, (pi, image)
        # The orbit structure is non-trivial: at least one tie is the
        # image of another, so rehydration is actually exercised.
        assert any(
            group.canonicalize(a) == group.canonicalize(b)
            for i, a in enumerate(ties)
            for b in ties[i + 1:]
        )


class TestRandomizedEquivalence:
    @given(algorithm_and_space())
    @settings(max_examples=30, deadline=None)
    def test_procedure_5_1_pruned_equals_unpruned(self, case):
        algo, space = case
        assert_equivalent(algo, space)

    @given(algorithm_and_space())
    @settings(max_examples=15, deadline=None)
    def test_scalar_path_pruned_equals_unpruned(self, case):
        algo, space = case
        assert_equivalent(algo, space, batch=False)

    @given(algorithm_and_space())
    @settings(max_examples=10, deadline=None)
    def test_tie_order_pruned_equals_unpruned(self, case):
        algo, space = case
        base = find_all_optima(algo, space, symmetry=False, ring_bound=False)
        pruned = find_all_optima(algo, space)
        assert [r.schedule.pi for r in pruned] == [
            r.schedule.pi for r in base
        ]

    @given(algorithm_and_space())
    @settings(max_examples=8, deadline=None)
    def test_engine_pruned_equals_serial_unpruned(self, case):
        algo, space = case
        base = procedure_5_1(algo, space, **BASELINE)
        engine = explore_schedule(algo, space, jobs=1)
        assert engine == base
        assert engine.stats.counter_dict() == base.stats.counter_dict()


class TestPaperMethodUnaffected:
    """``method="paper"`` must never receive orbit collapsing (the
    sufficient conditions are not syntactically symmetric), but the
    ring bound — which only ever skips screens on candidates that
    cannot be conflict-free — still applies."""

    def test_paper_method_equivalence(self):
        algo = matrix_multiplication(4)
        space = ((1, 1, -1),)
        base = procedure_5_1(algo, space, method="paper", **BASELINE)
        pruned = procedure_5_1(algo, space, method="paper")
        assert pruned == base
        assert pruned.stats.orbits_collapsed == 0


class TestRingBoundDegradation:
    """Satellite: LP failures degrade to "no bound", never raise."""

    def setup_method(self):
        ilp_formulation._lower_bound_cache.clear()

    def teardown_method(self):
        ilp_formulation._lower_bound_cache.clear()

    def test_lp_raise_degrades_and_records_event(self, monkeypatch):
        import repro.ilp.branch_bound as branch_bound

        def boom(prog):
            raise RuntimeError("synthetic LP failure")

        monkeypatch.setattr(branch_bound, "solve_lp_relaxation", boom)
        algo = matrix_multiplication(4)
        space = ((1, 1, -1),)
        base = procedure_5_1(algo, space, **BASELINE)
        with trace_session(None) as tracer:
            res = procedure_5_1(algo, space)
        assert res == base
        assert res.stats.candidates_skipped == 0
        assert res.stats.rings_bounded_out == 0
        events = [
            r for r in tracer.records()
            if r.get("name") == "ring_bound_failed"
        ]
        assert events
        assert "RuntimeError" in events[0]["attrs"]["reason"]

    def test_lp_bad_status_degrades(self, monkeypatch):
        import repro.ilp.branch_bound as branch_bound

        from repro.ilp.problem import LPSolution

        def unbounded(prog):
            return LPSolution(status="unbounded", x=None, objective=None)

        monkeypatch.setattr(branch_bound, "solve_lp_relaxation", unbounded)
        algo = transitive_closure(4)
        space = ((0, 0, 1),)
        base = procedure_5_1(algo, space, **BASELINE)
        res = procedure_5_1(algo, space)
        assert res == base
        assert res.stats.rings_bounded_out == 0

    def test_engine_degrades_too(self, monkeypatch):
        import repro.ilp.branch_bound as branch_bound

        def boom(prog):
            raise RuntimeError("synthetic LP failure")

        monkeypatch.setattr(branch_bound, "solve_lp_relaxation", boom)
        algo = matrix_multiplication(4)
        space = ((1, 1, -1),)
        base = procedure_5_1(algo, space, **BASELINE)
        res = explore_schedule(algo, space, jobs=1)
        assert res == base
        assert res.stats.rings_bounded_out == 0
