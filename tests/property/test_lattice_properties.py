"""Property-based tests for the lattice and reduction machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intlin import lll_reduce, rank
from repro.intlin.lattice import Lattice


@st.composite
def independent_rows(draw, count=2, dim=3, magnitude=5):
    for _ in range(30):
        rows = draw(
            st.lists(
                st.lists(
                    st.integers(-magnitude, magnitude),
                    min_size=dim,
                    max_size=dim,
                ),
                min_size=count,
                max_size=count,
            )
        )
        if rank(rows) == count:
            return rows
    return [[1 if j == i else 0 for j in range(dim)] for i in range(count)]


def lattice_of(rows):
    n = len(rows[0])
    return Lattice(basis=tuple(tuple(r[i] for r in rows) for i in range(n)))


class TestLatticeLaws:
    @given(independent_rows())
    @settings(max_examples=40)
    def test_closed_under_addition(self, rows):
        l = lattice_of(rows)
        a, b = rows
        s = [x + y for x, y in zip(a, b)]
        d = [x - y for x, y in zip(a, b)]
        assert l.contains(s)
        assert l.contains(d)
        assert l.contains([0] * len(a))

    @given(independent_rows(), st.integers(-4, 4), st.integers(-4, 4))
    @settings(max_examples=40)
    def test_contains_all_combinations(self, rows, p, q):
        l = lattice_of(rows)
        v = [p * a + q * b for a, b in zip(rows[0], rows[1])]
        assert l.contains(v)

    @given(independent_rows())
    @settings(max_examples=30)
    def test_lll_preserves_lattice(self, rows):
        reduced = lll_reduce(rows)
        assert lattice_of(rows) == lattice_of(reduced)

    @given(independent_rows())
    @settings(max_examples=30)
    def test_determinant_invariant_under_reduction(self, rows):
        assert lattice_of(rows).determinant() == lattice_of(
            lll_reduce(rows)
        ).determinant()

    @given(independent_rows(count=2, dim=2, magnitude=4))
    @settings(max_examples=30)
    def test_scaled_sublattice_index(self, rows):
        l = lattice_of(rows)
        doubled = lattice_of([[2 * x for x in r] for r in rows])
        assert l.contains_lattice(doubled)
        assert doubled.index_in(l) == 4  # scaling by 2 in rank 2

    @given(independent_rows(), st.lists(st.integers(1, 3), min_size=3, max_size=3))
    @settings(max_examples=25)
    def test_points_in_box_are_lattice_members(self, rows, box):
        l = lattice_of(rows)
        pts = list(l.points_in_box(box))
        assert (0,) * 3 in [tuple(p) for p in pts]
        for p in pts:
            assert l.contains(p)
            assert all(abs(x) <= b for x, b in zip(p, box))

    @given(independent_rows())
    @settings(max_examples=25)
    def test_box_points_symmetric(self, rows):
        l = lattice_of(rows)
        pts = {tuple(p) for p in l.points_in_box((3, 3, 3))}
        for p in pts:
            assert tuple(-x for x in p) in pts


class TestMarginProperties:
    @given(independent_rows(count=1, dim=3, magnitude=3))
    @settings(max_examples=25)
    def test_margin_positive(self, rows):
        from fractions import Fraction

        from repro.core import MappingMatrix, conflict_margin
        from repro.intlin import random_full_rank

        # Build a co-rank-1 mapping whose kernel is small but non-trivial.
        import random as _random

        t_rows = random_full_rank(2, 3, rng=_random.Random(sum(map(abs, rows[0]))))
        t = MappingMatrix.from_rows(t_rows)
        m = conflict_margin(t, (3, 3, 3))
        assert m > Fraction(0)
