"""E1 — Figure 1: feasible vs non-feasible conflict vectors.

Classifies every candidate conflict vector over the 2-D index set of
Figure 1 (mu = (4, 4)) and reproduces the figure's two exemplars:
``[1, 1]`` connects lattice points (non-feasible), ``[3, 5]`` escapes
the box (feasible).  The benchmark times the Theorem-2.2 classifier
over the full candidate box.
"""

import itertools

from conftest import print_table
from repro.core import is_feasible_conflict_vector
from repro.model import ConstantBoundedIndexSet
from repro.systolic import render_index_set_2d

J = ConstantBoundedIndexSet((4, 4))
CANDIDATES = [
    (g1, g2)
    for g1, g2 in itertools.product(range(-6, 7), repeat=2)
    if (g1, g2) != (0, 0)
]


def classify_all():
    return {
        gamma: is_feasible_conflict_vector(gamma, J.mu) for gamma in CANDIDATES
    }


def test_classification_speed(benchmark):
    result = benchmark(classify_all)
    assert len(result) == 13 * 13 - 1


def test_regenerate_figure_1(benchmark):
    verdicts = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    # The figure's two exemplars.
    assert verdicts[(1, 1)] is False
    assert verdicts[(3, 5)] is True

    feasible = sum(verdicts.values())
    non_feasible = len(verdicts) - feasible
    # Non-feasible = vectors in the closed box [-4,4]^2 minus origin.
    assert non_feasible == 9 * 9 - 1
    print_table(
        "Figure 1 — conflict vector classification over mu = (4,4)",
        ["class", "count"],
        [["feasible", feasible], ["non-feasible", non_feasible]],
    )
    print(render_index_set_2d(J, [(1, 1), (3, 5)]))


def test_classifier_agrees_with_geometry(benchmark):
    """Theorem 2.2 vs the geometric translation test, timed."""

    def both_ways():
        for gamma in CANDIDATES:
            algebraic = is_feasible_conflict_vector(gamma, J.mu)
            geometric = not J.admits_translation(gamma)
            assert algebraic == geometric
        return True

    assert benchmark(both_ways)
