"""E9 — substrate performance: Hermite/Smith normal form scaling,
plus the IntMat fast-path/object-path comparison.

The Hermite normal form is evaluated inside every conflict check of
Procedure 5.1, so its cost controls the whole search.  This harness
measures HNF, Smith and kernel-basis time against matrix size on
seeded random full-rank inputs, and checks the exactness invariants on
every timed sample (no point benchmarking a wrong answer).

The second half compares the two :class:`repro.intlin.IntMat` backends
— the overflow-certified int64 vectorized route against the exact
Python-int object route — on the workloads the search actually runs:
conflict-check image products and HNF conflict vectors at the paper's
Example 5.1 / 5.2 sizes.  Run standalone (``PYTHONPATH=src python
benchmarks/bench_intlin_scaling.py``) to write ``BENCH_intmat.json``;
the fast path must win the Example 5.1 conflict-check workload by at
least 2x with byte-identical verdicts, or the run exits non-zero.
"""

import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.core import distinct_image_count
from repro.core.optimize import enumerate_schedule_vectors
from repro.intlin import (
    IntMat,
    hnf,
    hnf_cached,
    kernel_basis,
    random_full_rank,
    smith_normal_form,
    verify_hermite,
    verify_smith,
)
from repro.model import (
    matrix_multiplication,
    transitive_closure,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_intmat.json"

SIZES = [(2, 4), (3, 6), (4, 8), (5, 10), (6, 12)]


def make_matrix(k, n, seed=7):
    return random_full_rank(k, n, rng=random.Random(seed), magnitude=9)


@pytest.mark.parametrize("k,n", SIZES)
def test_hnf_scaling(benchmark, k, n):
    m = make_matrix(k, n)
    res = benchmark(hnf, m)
    assert verify_hermite(m, res)


@pytest.mark.parametrize("k,n", SIZES)
def test_hnf_canonical_scaling(benchmark, k, n):
    m = make_matrix(k, n)
    res = benchmark(lambda: hnf(m, canonical=True))
    assert verify_hermite(m, res)


@pytest.mark.parametrize("k,n", SIZES)
def test_smith_scaling(benchmark, k, n):
    m = make_matrix(k, n)
    res = benchmark(smith_normal_form, m)
    assert verify_smith(m, res)


@pytest.mark.parametrize("k,n", SIZES)
def test_kernel_basis_scaling(benchmark, k, n):
    m = make_matrix(k, n)
    basis = benchmark(kernel_basis, m)
    assert len(basis) == n - k


def test_entry_growth_is_harmless(benchmark):
    """Arbitrary-precision path: a matrix engineered to blow up
    intermediate entries still decomposes exactly."""
    big = [[10**6 + i * j for j in range(6)] for i in range(3)]
    big[0][0] += 1  # ensure full rank
    big[1][1] += 7
    big[2][2] += 13

    def run():
        res = hnf(big)
        assert verify_hermite(big, res)
        return res

    res = benchmark(run)
    assert res.rank == 3


# -- IntMat backend comparison ----------------------------------------------
#
# The search's two hot matrix workloads, once per backend.  The
# "exact" variants force the object route via ``IntMat(..., exact=True)``
# — same values, no int64 vectorization — so the delta is purely the
# fast path's contribution.

_EXAMPLES = {
    "example-5.1-matmul-mu6": (matrix_multiplication(6), ((1, 1, -1),)),
    "example-5.2-tc-mu5": (transitive_closure(5), ((0, 0, 1),)),
}


def _candidate_rows(algo, space):
    """Full-rank mapping rows ``[S; Pi]`` for the first search ring.

    Rank-deficient candidates are dropped exactly as Procedure 5.1's
    Step 4 drops them before any conflict check runs.
    """
    mu = algo.mu
    candidates = [
        tuple(space) + (pi,)
        for pi in sorted(enumerate_schedule_vectors(mu, sum(mu)))
    ]
    k = len(space) + 1
    return [rows for rows in candidates if IntMat(rows).rank() == k]


def _conflict_verdicts(mats, pts):
    """Injectivity verdict of each mapping on the index points.

    Same image product + distinct-row count the production decider
    :func:`repro.core.is_conflict_free_bruteforce_vectorized` runs,
    but parameterized over the matrix backend.
    """
    return [
        bool(distinct_image_count(m.image_of_points(pts)) == pts.shape[0])
        for m in mats
    ]


@pytest.mark.parametrize("backend", ["int64", "exact"])
def test_conflict_check_backend(benchmark, backend):
    algo, space = _EXAMPLES["example-5.1-matmul-mu6"]
    rows = _candidate_rows(algo, space)
    pts = algo.index_set.points_array()
    exact = backend == "exact"

    verdicts = benchmark(
        lambda: _conflict_verdicts(
            [IntMat(r, exact=exact) for r in rows], pts
        )
    )
    reference = _conflict_verdicts([IntMat(r, exact=True) for r in rows], pts)
    assert verdicts == reference


@pytest.mark.parametrize("backend", ["int64", "exact"])
def test_det_adjugate_backend(benchmark, backend):
    rng = random.Random(11)
    rows_pool = [
        [[rng.randint(-9, 9) for _ in range(4)] for _ in range(4)]
        for _ in range(20)
    ]
    exact = backend == "exact"

    def run():
        out = []
        for rows in rows_pool:
            m = IntMat(rows, exact=exact)
            out.append((m.det(), m.adjugate()))
        return out

    result = benchmark(run)
    for (d, adj), rows in zip(result, rows_pool):
        assert IntMat(rows, exact=True).det() == d
        assert IntMat(rows, exact=True).adjugate() == adj


# -- standalone harness: BENCH_intmat.json ----------------------------------


def _timed(fn, repeats: int = 3):
    """Best-of-N wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_conflict_case(name: str) -> dict:
    """Fast-path vs object-path on one example's conflict-check workload."""
    algo, space = _EXAMPLES[name]
    rows = _candidate_rows(algo, space)
    pts = algo.index_set.points_array()

    # Matrices are prebuilt: construction/validation is identical on
    # both backends, so timing it would only dilute the comparison.
    fast_mats = [IntMat(r) for r in rows]
    exact_mats = [IntMat(r, exact=True) for r in rows]
    fast_t, fast_verdicts = _timed(lambda: _conflict_verdicts(fast_mats, pts))
    exact_t, exact_verdicts = _timed(lambda: _conflict_verdicts(exact_mats, pts))
    fast_blob = json.dumps(fast_verdicts).encode()
    exact_blob = json.dumps(exact_verdicts).encode()
    assert fast_blob == exact_blob, f"{name}: backends disagree on verdicts"

    return {
        "case": name,
        "workload": "conflict-check",
        "candidates": len(rows),
        "index_points": int(pts.shape[0]),
        "fast_s": fast_t,
        "exact_s": exact_t,
        "speedup": exact_t / fast_t if fast_t else float("inf"),
        "verdicts_identical": True,
    }


def bench_hnf_conflict_vectors(name: str) -> dict:
    """Conflict generators through HNF: uncached vs the IntMat-keyed memo."""
    algo, space = _EXAMPLES[name]
    mats = [IntMat(r) for r in _candidate_rows(algo, space)]

    def uncached():
        return [tuple(hnf(m).kernel_columns()) for m in mats]

    def memoized():
        return [tuple(hnf_cached(m).kernel_columns()) for m in mats]

    uncached_t, reference = _timed(uncached)
    memoized()  # warm the memo once; steady-state is what the search sees
    memo_t, generators = _timed(memoized)
    assert generators == reference, f"{name}: memoized HNF diverged"

    return {
        "case": name,
        "workload": "hnf-conflict-vectors",
        "candidates": len(mats),
        "uncached_s": uncached_t,
        "memoized_s": memo_t,
        "speedup": uncached_t / memo_t if memo_t else float("inf"),
    }


def main() -> int:
    records = [bench_conflict_case(name) for name in _EXAMPLES]
    records += [bench_hnf_conflict_vectors("example-5.1-matmul-mu6")]

    payload = {
        "benchmark": "intmat-fast-path",
        "cpu_count": os.cpu_count(),
        "records": records,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    header = f"{'case':28}  {'workload':22}  {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for r in records:
        print(f"{r['case']:28}  {r['workload']:22}  {r['speedup']:7.1f}x")
    print(f"\nwrote {OUTPUT}")

    bar = next(
        r for r in records
        if r["case"] == "example-5.1-matmul-mu6"
        and r["workload"] == "conflict-check"
    )
    if bar["speedup"] < 2.0:
        print(
            "FAIL: fast path under the 2x bar on the Example 5.1 "
            "conflict-check workload",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
