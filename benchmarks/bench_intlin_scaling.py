"""E9 — substrate performance: Hermite/Smith normal form scaling.

The Hermite normal form is evaluated inside every conflict check of
Procedure 5.1, so its cost controls the whole search.  This harness
measures HNF, Smith and kernel-basis time against matrix size on
seeded random full-rank inputs, and checks the exactness invariants on
every timed sample (no point benchmarking a wrong answer).
"""

import random

import pytest

from repro.intlin import (
    hnf,
    kernel_basis,
    random_full_rank,
    smith_normal_form,
    verify_hermite,
    verify_smith,
)

SIZES = [(2, 4), (3, 6), (4, 8), (5, 10), (6, 12)]


def make_matrix(k, n, seed=7):
    return random_full_rank(k, n, rng=random.Random(seed), magnitude=9)


@pytest.mark.parametrize("k,n", SIZES)
def test_hnf_scaling(benchmark, k, n):
    m = make_matrix(k, n)
    res = benchmark(hnf, m)
    assert verify_hermite(m, res)


@pytest.mark.parametrize("k,n", SIZES)
def test_hnf_canonical_scaling(benchmark, k, n):
    m = make_matrix(k, n)
    res = benchmark(lambda: hnf(m, canonical=True))
    assert verify_hermite(m, res)


@pytest.mark.parametrize("k,n", SIZES)
def test_smith_scaling(benchmark, k, n):
    m = make_matrix(k, n)
    res = benchmark(smith_normal_form, m)
    assert verify_smith(m, res)


@pytest.mark.parametrize("k,n", SIZES)
def test_kernel_basis_scaling(benchmark, k, n):
    m = make_matrix(k, n)
    basis = benchmark(kernel_basis, m)
    assert len(basis) == n - k


def test_entry_growth_is_harmless(benchmark):
    """Arbitrary-precision path: a matrix engineered to blow up
    intermediate entries still decomposes exactly."""
    big = [[10**6 + i * j for j in range(6)] for i in range(3)]
    big[0][0] += 1  # ensure full rank
    big[1][1] += 7
    big[2][2] += 13

    def run():
        res = hnf(big)
        assert verify_hermite(big, res)
        return res

    res = benchmark(run)
    assert res.rank == 3
