"""E13 — lattice toolbox performance: LLL, margins, box enumeration.

Substrate benchmarks for the extensions built on the conflict lattice:
exact LLL reduction, the conflict-margin metric, and the lattice-box
enumeration engine.  Each timed sample is verified exact (reduced basis
spans the same lattice; margin separates conflict classes perfectly).
"""

import random
from fractions import Fraction

import pytest

from conftest import print_table
from repro.core import (
    MappingMatrix,
    conflict_margin,
    is_conflict_free_kernel_box,
)
from repro.intlin import lll_reduce, random_full_rank, shortest_vector
from repro.intlin.lattice import Lattice


def skewed_basis(rank_, dim, seed=3, scale=50):
    rng = random.Random(seed)
    rows = random_full_rank(rank_, dim, rng=rng, magnitude=4)
    # Skew: add large multiples of the first row to the others.
    return [rows[0]] + [
        [x + scale * y for x, y in zip(row, rows[0])] for row in rows[1:]
    ]


@pytest.mark.parametrize("rank_,dim", [(2, 4), (3, 5), (3, 6)])
def test_lll_speed(benchmark, rank_, dim):
    basis = skewed_basis(rank_, dim)
    reduced = benchmark(lll_reduce, basis)

    def lattice_of(rows):
        n = len(rows[0])
        return Lattice(basis=tuple(tuple(r[i] for r in rows) for i in range(n)))

    assert lattice_of(basis) == lattice_of(reduced)


@pytest.mark.parametrize("rank_,dim", [(2, 4), (3, 5)])
def test_shortest_vector_speed(benchmark, rank_, dim):
    basis = skewed_basis(rank_, dim, seed=9)
    v = benchmark(shortest_vector, basis)
    assert any(v)


def test_margin_speed_corank2(benchmark):
    rng = random.Random(5)
    mappings = [
        MappingMatrix.from_rows(random_full_rank(2, 4, rng=rng, magnitude=4))
        for _ in range(20)
    ]
    mu = (3, 3, 3, 3)

    def run():
        return [conflict_margin(t, mu) for t in mappings]

    margins = benchmark(run)
    for t, m in zip(mappings, margins):
        assert (m > Fraction(1)) == is_conflict_free_kernel_box(t, mu)


def test_regenerate_margin_table(benchmark):
    """Margins of the paper's named mappings: the head-room sheet."""

    def compute():
        cases = [
            ("matmul Pi*=[1,4,1]", ((1, 1, -1),), (1, 4, 1), (4, 4, 4)),
            ("matmul [23] [2,1,4]", ((1, 1, -1),), (2, 1, 4), (4, 4, 4)),
            ("matmul bad [1,1,4]", ((1, 1, -1),), (1, 1, 4), (4, 4, 4)),
            ("tc Pi*=[5,1,1]", ((0, 0, 1),), (5, 1, 1), (4, 4, 4)),
            ("tc [22] [9,1,1]", ((0, 0, 1),), (9, 1, 1), (4, 4, 4)),
        ]
        rows = []
        for label, space, pi, mu in cases:
            t = MappingMatrix(space=space, schedule=pi)
            m = conflict_margin(t, mu)
            rows.append([label, str(m), float(m) > 1.0])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Conflict margins of the paper's mappings (mu = 4)",
        ["mapping", "margin", "conflict-free"],
        rows,
    )
    by_label = {r[0]: r for r in rows}
    assert by_label["matmul Pi*=[1,4,1]"][2] is True
    assert by_label["matmul bad [1,1,4]"][2] is False
    # The [23] baseline has MORE head-room than the time-optimum: the
    # classic time-vs-robustness trade-off, quantified.
    assert Fraction(by_label["matmul [23] [2,1,4]"][1]) >= Fraction(
        by_label["matmul Pi*=[1,4,1]"][1]
    )
