"""E7 — Section 5's solver comparison: Procedure 5.1 vs the ILP route.

The paper argues the integer-programming formulation is "much more
preferable" to the enumerative Procedure 5.1 (whose complexity it
bounds by ``O(n^(2 mu + 1))``).  This harness measures both on the two
worked examples across problem sizes and reports wall time, candidates
examined, and (crucially) that both return the same optimum.
"""

import pytest

from conftest import print_table
from repro.core import procedure_5_1, solve_corank1_optimal
from repro.model import matrix_multiplication, transitive_closure

CASES = [
    ("matmul", matrix_multiplication, [[1, 1, -1]]),
    ("transitive_closure", transitive_closure, [[0, 0, 1]]),
]
SWEEP = [2, 4, 6]


@pytest.mark.parametrize("mu", SWEEP)
@pytest.mark.parametrize("case", [c[0] for c in CASES])
def test_procedure_5_1(benchmark, case, mu):
    name, ctor, space = next(c for c in CASES if c[0] == case)
    algo = ctor(mu)
    result = benchmark(procedure_5_1, algo, space)
    assert result.found


@pytest.mark.parametrize("mu", SWEEP)
@pytest.mark.parametrize("case", [c[0] for c in CASES])
def test_ilp_route(benchmark, case, mu):
    name, ctor, space = next(c for c in CASES if c[0] == case)
    algo = ctor(mu)
    result = benchmark(solve_corank1_optimal, algo, space)
    assert result.found


def test_solvers_agree_and_effort_table(benchmark):
    """Same optimum from both routes; search effort grows with mu while
    the ILP candidate count stays flat — the paper's preference,
    quantified."""

    def compute():
        rows = []
        for name, ctor, space in CASES:
            for mu in SWEEP:
                algo = ctor(mu)
                search = procedure_5_1(algo, space)
                ilp = solve_corank1_optimal(algo, space)
                assert search.total_time == ilp.total_time, (name, mu)
                rows.append(
                    [
                        name,
                        mu,
                        search.total_time,
                        search.candidates_examined,
                        ilp.candidates_checked,
                        ilp.subproblems,
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Procedure 5.1 vs ILP route — solution effort",
        [
            "algorithm",
            "mu",
            "t*",
            "search candidates",
            "ILP candidates",
            "ILP subproblems",
        ],
        rows,
    )
    # Shape: per algorithm, search effort is non-decreasing in mu and
    # eventually exceeds the (flat) ILP candidate count.
    for name, _ctor, _space in CASES:
        série = [r for r in rows if r[0] == name]
        efforts = [r[3] for r in série]
        assert all(a <= b for a, b in zip(efforts, efforts[1:]))
        assert série[-1][3] >= série[-1][4]
