"""E11 — Problems 6.1 / 6.2 (Section 6 future work, implemented here).

No paper numbers exist for these — Section 6 poses them as open — so
the bench regenerates the *design-space structure* our implementation
discovers: the paper's matmul space mapping ``S = [1, 1, -1]`` is not
space-optimal for its own time-optimal schedule (a 5-PE design ties it
on time), and the joint optimizer's winner moves predictably with the
time/area weighting.
"""

import pytest

from conftest import print_table
from repro.core import procedure_5_1, solve_joint_optimal, solve_space_optimal
from repro.model import matrix_multiplication, transitive_closure


@pytest.mark.parametrize("mu", [2, 3, 4])
def test_problem_6_1_matmul(benchmark, mu):
    algo = matrix_multiplication(mu)
    pi = procedure_5_1(algo, [[1, 1, -1]]).schedule.pi
    result = benchmark(solve_space_optimal, algo, pi)
    assert result.found
    # The winner never costs more than the paper's design.
    paper = next(
        (d for d in result.ranking if d.mapping.space == ((1, 1, -1),)), None
    )
    if paper is not None:
        assert result.best.objective <= paper.objective


@pytest.mark.parametrize("mu", [2, 3])
def test_problem_6_2_matmul(benchmark, mu):
    algo = matrix_multiplication(mu)
    result = benchmark(solve_joint_optimal, algo)
    assert result.found


def test_regenerate_design_space_table(benchmark):
    def compute():
        rows = []
        for mu in (2, 3, 4):
            algo = matrix_multiplication(mu)
            pi = procedure_5_1(algo, [[1, 1, -1]]).schedule.pi
            res = solve_space_optimal(algo, pi)
            best = res.best
            paper = next(
                (d for d in res.ranking if d.mapping.space == ((1, 1, -1),)),
                None,
            )
            rows.append(
                [
                    mu,
                    list(pi),
                    [list(r) for r in best.mapping.space],
                    best.cost.processors,
                    paper.cost.processors if paper else "-",
                    best.cost.total_time,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Problem 6.1 — space-optimal matmul designs vs the paper's S",
        ["mu", "Pi (fixed)", "best S", "best PEs", "paper-S PEs", "t"],
        rows,
    )
    # Shape: the optimal design never uses more PEs than the paper's,
    # and at mu = 2 it strictly improves (5 < 7).
    for row in rows:
        if row[4] != "-":
            assert row[3] <= row[4]
    assert rows[0][3] == 5 and rows[0][4] == 7


def test_weight_sensitivity(benchmark):
    """Problem 6.2 winners across the time/area weighting axis."""

    def compute():
        algo = matrix_multiplication(2)
        rows = []
        for tw, sw, label in ((1.0, 1.0, "balanced"),
                              (10.0, 1.0, "time-heavy"),
                              (1.0, 10.0, "area-heavy")):
            res = solve_joint_optimal(algo, time_weight=tw, space_weight=sw)
            c = res.best.cost
            rows.append(
                [label, [list(r) for r in res.best.mapping.space],
                 list(res.best.mapping.schedule),
                 c.total_time, c.processors, c.wire_length]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Problem 6.2 — winner vs objective weighting (matmul, mu = 2)",
        ["weighting", "S", "Pi", "t", "PEs", "wire"],
        rows,
    )
    by_label = {r[0]: r for r in rows}
    # time-heavy winner achieves the global time optimum.
    assert by_label["time-heavy"][3] == 9
    # area-heavy winner uses the fewest PEs.
    assert by_label["area-heavy"][4] == min(r[4] for r in rows)


def test_problem_6_1_transitive_closure(benchmark):
    algo = transitive_closure(3)
    result = benchmark(solve_space_optimal, algo, (4, 1, 1))
    assert result.found
