"""E12 — the conflict penalty: what the processor shortage costs.

An ablation DESIGN.md's checker hierarchy implies but the paper never
quantifies: compare the *dependence-only* optimal schedule (ref [16]'s
sub-problem — no array, infinite processors) with the conflict-free
optimum on the linear array.  Shape: matmul's penalty grows as
``mu^2 - mu`` (quadratic — the linear array genuinely throttles the
cube), while the transitive closure penalty stays milder because its
dependence cone already forces a long schedule.
"""

import pytest

from conftest import print_table
from repro.core import (
    optimal_free_schedule,
    solve_corank1_optimal,
)
from repro.model import matrix_multiplication, transitive_closure

SWEEP = [2, 3, 4, 6]


@pytest.mark.parametrize("mu", SWEEP)
def test_free_schedule_speed(benchmark, mu):
    algo = matrix_multiplication(mu)
    res = benchmark(optimal_free_schedule, algo)
    assert res.schedule.pi == (1, 1, 1)


def test_regenerate_penalty_table(benchmark):
    def compute():
        rows = []
        for mu in SWEEP:
            mm = matrix_multiplication(mu)
            tc = transitive_closure(mu)
            mm_free = optimal_free_schedule(mm).total_time
            tc_free = optimal_free_schedule(tc).total_time
            mm_cf = solve_corank1_optimal(mm, [[1, 1, -1]]).total_time
            tc_cf = solve_corank1_optimal(tc, [[0, 0, 1]]).total_time
            rows.append(
                [mu, mm_free, mm_cf, mm_cf - mm_free, tc_free, tc_cf,
                 tc_cf - tc_free]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Conflict penalty — dependence-only vs conflict-free optima",
        ["mu", "mm free", "mm array", "mm penalty",
         "tc free", "tc array", "tc penalty"],
        rows,
    )
    # Shapes: matmul free time is 3mu+1; at even mu the penalty is
    # exactly mu^2 - mu; penalties never negative and matmul's grows
    # superlinearly.
    for row in rows:
        mu = row[0]
        assert row[1] == 3 * mu + 1
        assert row[3] >= 0 and row[6] >= 0
        if mu % 2 == 0:
            assert row[3] == mu * mu - mu
    penalties = [r[3] for r in rows]
    assert penalties[-1] / penalties[0] > SWEEP[-1] / SWEEP[0]


def test_certificate_generation_speed(benchmark):
    """Optimality certificates (audit trail) for the mu=4 optimum."""
    from repro.core import certify_optimality, verify_certificate

    algo = matrix_multiplication(4)

    def run():
        cert = certify_optimality(algo, [[1, 1, -1]], (1, 4, 1))
        assert verify_certificate(algo, cert)
        return len(cert.refutations)

    count = benchmark(run)
    print(f"\ncertificate covers {count} faster candidates "
          "(each with an explicit refutation)")
    assert count > 100
