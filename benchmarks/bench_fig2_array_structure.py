"""E5 — Figure 2: the linear-array block diagram for matmul.

Regenerates the array design the figure shows: three data links (B and
A eastward, C westward), three buffer registers on the A link, none
elsewhere, and the ``S D = P K`` / Equation 2.3 certificates.
"""

from conftest import print_table
from repro.core import MappingMatrix
from repro.intlin import matmul as int_matmul
from repro.model import matrix_multiplication
from repro.systolic import plan_interconnection, render_array_diagram

ALGO = matrix_multiplication(4)
T = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))


def test_interconnection_planning_speed(benchmark):
    plan = benchmark(plan_interconnection, ALGO, T)
    assert plan.buffers == (0, 3, 0)


def test_regenerate_figure_2(benchmark):
    plan = benchmark.pedantic(plan_interconnection, args=(ALGO, T), rounds=1, iterations=1)

    # S D = P K exactly.
    s = [list(r) for r in T.space]
    d = [list(r) for r in ALGO.dependence_matrix]
    p = [list(r) for r in plan.primitives]
    k = [list(r) for r in plan.usage]
    assert int_matmul(s, d) == int_matmul(p, k)

    # Directions: B, A eastward (+1); C westward (-1).
    directions = []
    for i in range(3):
        disp = sum(plan.primitives[0][col] for col in plan.routes[i])
        directions.append(disp)
    assert directions == [1, 1, -1]

    # Equation 2.3 and buffers.
    rows = []
    for i, (name, dep) in enumerate(
        zip(["B (d1)", "A (d2)", "C (d3)"], ALGO.dependence_vectors())
    ):
        hops = plan.hops(i)
        budget = T.time(dep)
        rows.append([name, dep, hops, budget, plan.buffers[i]])
        assert hops <= budget
    print_table(
        "Figure 2 — link plan for T = [[1,1,-1],[1,4,1]]",
        ["stream", "d_i", "hops (sum k)", "Pi d_i", "buffers"],
        rows,
    )
    assert plan.buffers == (0, 3, 0)
    assert plan.statically_collision_free()

    print(render_array_diagram(T, plan, channel_names=["B", "A", "C"],
                               num_processors=7))


def test_paper_k_matrix_choice(benchmark):
    """The paper sets K = I with P = S D; our minimal-hop K uses each
    primitive once per dependence — the same single-use property that
    rules out link collisions."""
    plan = benchmark.pedantic(plan_interconnection, args=(ALGO, T), rounds=1, iterations=1)
    for col in plan.usage_columns():
        assert sum(col) == 1
