"""E2 — Examples 2.1 / 4.1 / 4.2: the 4-D mapping and its Hermite form.

Regenerates the paper's worked Hermite computation for
``T = [[1,7,1,1],[1,7,1,0]]`` (Equation 2.8): the normal form, the
kernel generators, the feasibility verdicts for ``gamma_1, gamma_2,
gamma_3``, and the non-conflict-freedom of ``T`` — including the
rational-combination trap of Example 4.1.
"""

from conftest import print_table
from repro.core import (
    MappingMatrix,
    find_conflict_witness,
    is_conflict_free_kernel_box,
    is_feasible_conflict_vector,
)
from repro.intlin import hnf, verify_hermite
from repro.model import ConstantBoundedIndexSet

T_ROWS = [[1, 7, 1, 1], [1, 7, 1, 0]]
MU = (6, 6, 6, 6)


def test_hermite_of_equation_2_8(benchmark):
    res = benchmark(hnf, T_ROWS)
    assert verify_hermite(T_ROWS, res)
    assert res.rank == 2


def test_regenerate_example_4_2(benchmark):
    res = benchmark.pedantic(hnf, args=(T_ROWS,), rounds=1, iterations=1)
    gens = res.kernel_columns()
    rows = [
        ["H", res.h],
        ["U", res.u],
        ["kernel generators", gens],
    ]
    print_table("Example 4.2 — Hermite data for T (Eq 2.8)", ["item", "value"], rows)

    # All generators annihilate T; the paper's u3, u4 lattice matches.
    from repro.intlin import matvec, solve_diophantine

    for g in gens:
        assert matvec(T_ROWS, g) == [0, 0]
    ours_mat = [[col[i] for col in gens] for i in range(4)]
    for paper_col in ([-1, 0, 1, 0], [-7, 1, 0, 0]):
        assert solve_diophantine(ours_mat, paper_col) is not None


def test_regenerate_example_2_1_verdicts(benchmark):
    t = MappingMatrix.from_rows(T_ROWS)
    benchmark.pedantic(
        lambda: is_conflict_free_kernel_box(t, MU), rounds=1, iterations=1
    )
    gammas = {
        "gamma_1": [0, 1, -7, 0],
        "gamma_2": [7, -1, 0, 0],
        "gamma_3": [1, 0, -1, 0],
    }
    rows = [
        [name, g, "feasible" if is_feasible_conflict_vector(g, MU) else "NON-feasible"]
        for name, g in gammas.items()
    ]
    print_table("Example 2.1 — conflict vector verdicts (mu_i = 6)", ["name", "gamma", "verdict"], rows)
    assert is_feasible_conflict_vector(gammas["gamma_1"], MU)
    assert is_feasible_conflict_vector(gammas["gamma_2"], MU)
    assert not is_feasible_conflict_vector(gammas["gamma_3"], MU)
    assert not is_conflict_free_kernel_box(t, MU)

    witness = find_conflict_witness(t, ConstantBoundedIndexSet(MU))
    print(f"colliding pair: tau{witness[0]} == tau{witness[1]} == "
          f"{t.tau(witness[0])}")


def test_exact_decider_speed(benchmark):
    """Kernel-box decision for the 4-D example (2401 index points would
    be touched by brute force; the lattice decider touches none)."""
    t = MappingMatrix.from_rows(T_ROWS)
    result = benchmark(is_conflict_free_kernel_box, t, MU)
    assert result is False


def test_bruteforce_decider_speed(benchmark):
    """The brute-force referee on the same instance, for contrast."""
    from repro.core import is_conflict_free_bruteforce

    t = MappingMatrix.from_rows(T_ROWS)
    j = ConstantBoundedIndexSet(MU)
    result = benchmark(is_conflict_free_bruteforce, t, j)
    assert result is False
