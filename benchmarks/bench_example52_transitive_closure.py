"""E4 — Example 5.2: time-optimal transitive closure.

Regenerates the paper's headline improvement: ``Pi° = [mu+1, 1, 1]``
with ``t = mu(mu+3)+1`` versus ref [22]'s ``Pi' = [2mu+1, 1, 1]`` with
``t' = mu(2mu+3)+1``.  Shape: the speedup grows monotonically toward 2x.
"""

import pytest

from conftest import print_table
from repro.core import (
    solve_corank1_optimal,
    transitive_closure_baseline_ref22,
)
from repro.model import transitive_closure

SPACE = [[0, 0, 1]]
SWEEP = [2, 3, 4, 6, 8, 12]


@pytest.mark.parametrize("mu", SWEEP)
def test_optimal_schedule_search(benchmark, mu):
    algo = transitive_closure(mu)
    result = benchmark(solve_corank1_optimal, algo, SPACE)
    assert result.found
    assert result.schedule.pi == (mu + 1, 1, 1)
    assert result.total_time == mu * (mu + 3) + 1


def test_regenerate_example_5_2_table(benchmark):
    def compute():
        out = []
        for mu in SWEEP:
            algo = transitive_closure(mu)
            res = solve_corank1_optimal(algo, SPACE)
            baseline = transitive_closure_baseline_ref22(mu)
            out.append((mu, res, baseline))
        return out

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    speedups = []
    for mu, res, baseline in data:
        speedup = baseline.total_time / res.total_time
        speedups.append(speedup)
        rows.append(
            [
                mu,
                list(res.schedule.pi),
                res.total_time,
                mu * (mu + 3) + 1,
                baseline.total_time,
                f"{speedup:.3f}x",
            ]
        )
    print_table(
        "Example 5.2 — transitive closure (S = [0,0,1])",
        ["mu", "Pi* (ours)", "t (ours)", "mu(mu+3)+1", "t' ([22])", "speedup"],
        rows,
    )
    # Shape: closed form matches exactly; speedup increases toward 2.
    for row in rows:
        assert row[2] == row[3]
    assert all(a < b for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 1.7


def test_conflict_vector_row(benchmark):
    """gamma = [1, -(mu+1), 0] for every sweep point."""
    from repro.core import MappingMatrix, conflict_vector_corank1

    def compute():
        out = []
        for mu in SWEEP:
            t = MappingMatrix(space=((0, 0, 1),), schedule=(mu + 1, 1, 1))
            out.append([mu, conflict_vector_corank1(t)])
        return out

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    for mu, gamma in rows:
        assert gamma == [1, -(mu + 1), 0]
    print_table(
        "Example 5.2 — conflict vectors of the optimal mappings",
        ["mu", "gamma"],
        rows,
    )
