"""E3 — Example 5.1: time-optimal matmul on a linear array.

Regenerates the paper's comparison: the optimal schedule found by this
paper's method (``t = mu(mu+2)+1`` at even ``mu``) versus the schedule
of ref [23] (``Pi' = [2, 1, mu]``, ``t' = mu(mu+3)+1``), across a
problem-size sweep.  The shape that must hold: our optimum strictly
beats the baseline for all even ``mu >= 4`` by exactly ``mu`` cycles,
never loses anywhere, and the mu=3 point beats even the paper's own
claim (finding F3).
"""

import pytest

from conftest import print_table
from repro.core import (
    matmul_baseline_ref23,
    solve_corank1_optimal,
)
from repro.model import matrix_multiplication

SPACE = [[1, 1, -1]]
SWEEP = [2, 3, 4, 5, 6, 8]


@pytest.mark.parametrize("mu", SWEEP)
def test_optimal_schedule_search(benchmark, mu):
    """Time the full ILP route for one problem size."""
    algo = matrix_multiplication(mu)
    result = benchmark(solve_corank1_optimal, algo, SPACE)
    assert result.found
    baseline_t = matmul_baseline_ref23(mu).total_time
    assert result.total_time <= baseline_t
    if mu % 2 == 0:
        assert result.total_time == mu * (mu + 2) + 1


def test_regenerate_example_5_1_table(benchmark):
    """The paper's Example 5.1 rows, for the record (run with -s)."""
    def compute():
        out = []
        for mu in SWEEP:
            algo = matrix_multiplication(mu)
            res = solve_corank1_optimal(algo, SPACE)
            baseline = matmul_baseline_ref23(mu)
            out.append((mu, res, baseline))
        return out

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for mu, res, baseline in data:
        rows.append(
            [
                mu,
                list(res.schedule.pi),
                res.total_time,
                list(baseline.mapping.schedule),
                baseline.total_time,
                f"{baseline.total_time / res.total_time:.3f}x",
            ]
        )
    print_table(
        "Example 5.1 — matmul on a linear array (S = [1,1,-1])",
        ["mu", "Pi* (ours)", "t (ours)", "Pi' ([23])", "t' ([23])", "speedup"],
        rows,
    )
    # Shape assertions: never lose; win by exactly mu at even mu >= 4.
    for row, mu in zip(rows, SWEEP):
        assert row[2] <= row[4]
        if mu % 2 == 0 and mu >= 4:
            assert row[4] - row[2] == mu
    # mu = 3: the paper claims [2,1,3] (t=19) optimal; the true optimum
    # is 16 (finding F3).
    mu3 = rows[SWEEP.index(3)]
    assert mu3[2] == 16


def test_buffer_count_row(benchmark):
    """Paper: our design needs 3 buffers, [23]'s needs 4 (mu = 4)."""
    from repro.core import MappingMatrix
    from repro.systolic import plan_interconnection

    algo = matrix_multiplication(4)

    def plan_both():
        ours = plan_interconnection(
            algo, MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        )
        theirs = plan_interconnection(
            algo, MappingMatrix(space=((1, 1, -1),), schedule=(2, 1, 4))
        )
        return ours, theirs

    ours, theirs = benchmark.pedantic(plan_both, rounds=1, iterations=1)
    print_table(
        "Example 5.1 — buffers on data links (mu = 4)",
        ["design", "buffers (B, A, C)", "total"],
        [
            ["paper Pi*=[1,4,1]", ours.buffers, ours.total_buffers],
            ["[23]  Pi'=[2,1,4]", theirs.buffers, theirs.total_buffers],
        ],
    )
    assert ours.total_buffers == 3
    assert theirs.total_buffers == 4
