"""E-SYM — the symbolic design compiler: solve once in mu, serve any size.

Standalone (no pytest needed): ``PYTHONPATH=src python
benchmarks/bench_symbolic.py`` compiles Example 5.1 (matrix
multiplication mapped by ``S = [1, 1, -1]``) symbolically over
``mu in [1, 50]``, then answers ``mu = 50`` both ways — O(1) polynomial
evaluation against a fresh enumerative Procedure 5.1 run — and writes
the numbers to ``BENCH_symbolic.json``.

The shape that must hold on any machine: the symbolic answer is
bit-identical to the enumerative one (winner, total time) at every
checked size, and evaluating the compiled solution at ``mu = 50`` is at
least 100x faster than enumerating there.  (In practice the gap is six
to seven orders of magnitude — the enumerative search visits ~200k
candidates at mu = 50 while the evaluation is three Horner loops — so
the 100x bar is a regression tripwire, not a target.)  The compile cost
is recorded too: certificates are not free, they are *once*.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.optimize import procedure_5_1  # noqa: E402
from repro.model import matrix_multiplication  # noqa: E402
from repro.symbolic import compile_schedule, family_from_algorithm  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_symbolic.json"

SPACE = [[1, 1, -1]]
MU_RANGE = (1, 50)
TARGET_MU = 50
SPEEDUP_BAR = 100.0
#: Cheap equality sweep — sizes where a fresh enumeration is fast.
SWEEP = (1, 2, 3, 4, 7, 10, 13)


def main() -> int:
    family = family_from_algorithm(matrix_multiplication(4))

    print(f"compiling Example 5.1 over mu in {list(MU_RANGE)} ...")
    t0 = time.perf_counter()
    solution = compile_schedule(family, SPACE, mu_range=MU_RANGE)
    compile_s = time.perf_counter() - t0
    print(f"  compiled in {compile_s:.1f}s "
          f"({solution.samples} enumerative samples, "
          f"{len(solution.intervals)} interval(s))")

    # O(1) answer: median of repeated evaluations (they are microseconds).
    eval_times = []
    for _ in range(25):
        t0 = time.perf_counter()
        answer = solution.eval(TARGET_MU)
        eval_times.append(time.perf_counter() - t0)
    eval_s = statistics.median(eval_times)
    assert answer is not None and answer.found

    print(f"enumerating at mu = {TARGET_MU} (the run the certificate "
          "replaces) ...")
    t0 = time.perf_counter()
    direct = procedure_5_1(family.algorithm(TARGET_MU), SPACE)
    enum_s = time.perf_counter() - t0
    print(f"  enumerated in {enum_s:.1f}s "
          f"({direct.candidates_examined} candidates)")

    assert answer.pi == tuple(direct.schedule.pi), (
        f"winner mismatch at mu={TARGET_MU}: "
        f"symbolic {answer.pi} vs enumerative {tuple(direct.schedule.pi)}"
    )
    assert answer.total_time == direct.total_time

    sweep = []
    for mu in SWEEP:
        a = solution.eval(mu)
        r = procedure_5_1(family.algorithm(mu), SPACE)
        assert a.found == r.found
        assert a.pi == tuple(r.schedule.pi) and a.total_time == r.total_time
        sweep.append(mu)

    speedup = enum_s / eval_s
    breakeven = compile_s / enum_s
    print(f"eval(mu={TARGET_MU}) : {eval_s * 1e6:.1f} us  "
          f"(x{speedup:,.0f} vs enumeration)")
    print(f"compile amortizes after {breakeven:.2f} enumerative queries")

    record = {
        "benchmark": "symbolic-compiler",
        "case": "example-5.1-matmul",
        "space": SPACE,
        "mu_range": list(MU_RANGE),
        "target_mu": TARGET_MU,
        "compile_s": compile_s,
        "compile_samples": solution.samples,
        "intervals": [
            {"lo": iv.lo, "hi": iv.hi,
             "pi": [str(p) for p in (iv.pi or ())],
             "total_time": str(iv.total_time)}
            for iv in solution.intervals
        ],
        "eval_s": eval_s,
        "enumerate_s": enum_s,
        "speedup": speedup,
        "speedup_bar": SPEEDUP_BAR,
        "breakeven_queries": breakeven,
        "equality_sweep_mu": sweep,
        "pi": list(answer.pi),
        "total_time": answer.total_time,
        "candidates_replaced": direct.candidates_examined,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if speedup < SPEEDUP_BAR:
        print(f"FAIL: speedup x{speedup:.1f} below the x{SPEEDUP_BAR:.0f} bar",
              file=sys.stderr)
        return 1
    print(f"OK: x{speedup:,.0f} >= x{SPEEDUP_BAR:.0f} at mu = {TARGET_MU}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
