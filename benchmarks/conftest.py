"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's figures or worked
examples (see DESIGN.md §3 for the experiment index).  Benchmarks both
*time* the relevant operation (pytest-benchmark) and *assert the
paper's shape*: who wins, by what factor, where the crossovers fall.
Run with ``pytest benchmarks/ --benchmark-only`` and add ``-s`` to see
the regenerated tables.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a small aligned table to stdout (visible with -s)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
