"""E-SERVE — the mapping service: cold vs cached latency, throughput, recovery.

Standalone (no pytest needed): ``PYTHONPATH=src python
benchmarks/bench_serve.py`` starts a real ``repro serve`` subprocess
and measures, on the paper's Example 5.1 (matmul, mu=6, S=[1,1,-1]):

* **cold latency** — submit → done for a fresh spec (search runs);
* **cached latency** — resubmitting the identical spec, answered from
  the finished job in the submit response itself (no work enqueued);
  asserted to be at least 10x below cold;
* **warm-cache restart** — a brand-new server generation (fresh job
  state, same result-cache dir) answering the same spec from the
  persistent ``ResultCache``;
* **N-client throughput** — 8 threads submitting distinct specs;
* **restart recovery** — SIGTERM mid-search, restart, time until the
  resumed job completes (with the result asserted equal to an
  uninterrupted serial run);
* **hardening overhead** — the 8-client throughput shape scaled to 48
  distinct jobs, ``--no-hardening`` vs the fully armed defaults (queue
  bound, breaker, watchdog deadline), interleaved best-of-4 each; the
  containment layer must cost < 3%.

Writes the numbers to ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dse.executor import explore_schedule  # noqa: E402
from repro.model import matrix_multiplication  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.protocol import encode_result  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
SRC = str(Path(__file__).resolve().parent.parent / "src")

EXAMPLE_51 = {
    "task": "schedule", "algorithm": "matmul", "mu": [6],
    "space": [[1, 1, -1]],
}


class Server:
    """One ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, state_dir: Path, cache_dir: Path | None = None,
                 *, env: dict | None = None, workers: int = 2,
                 extra_args: tuple = ()) -> None:
        self.port_file = state_dir / "port"
        if self.port_file.exists():
            self.port_file.unlink()
        run_env = dict(os.environ, PYTHONPATH=SRC)
        run_env.update(env or {})
        args = [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir), "--port", "0",
            "--port-file", str(self.port_file),
            "--workers", str(workers),
        ]
        args += (["--cache-dir", str(cache_dir)] if cache_dir
                 else ["--no-cache"])
        args += list(extra_args)
        self.proc = subprocess.Popen(args, env=run_env,
                                     stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if self.port_file.exists() and self.port_file.read_text().strip():
                self.port = int(self.port_file.read_text())
                return
            time.sleep(0.02)
        raise RuntimeError("server never came up")

    def client(self) -> ServeClient:
        return ServeClient(port=self.port)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            self.proc.wait(timeout=30)


def bench_latency(root: Path, serial_encoded: dict) -> dict:
    state, cache = root / "lat-state", root / "lat-cache"
    state.mkdir()
    server = Server(state, cache)
    try:
        client = server.client()

        t0 = time.perf_counter()
        record = client.submit(EXAMPLE_51)
        final = client.wait(record["id"], timeout=120)
        cold = time.perf_counter() - t0
        assert final["result"] == serial_encoded, "serve != serial"

        # Identical spec again: the submit response itself carries the
        # result (digest dedup onto the finished job).
        best_cached = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            again = client.submit(EXAMPLE_51)
            best_cached = min(best_cached, time.perf_counter() - t0)
            assert again["created"] is False
            assert again["result"] == serial_encoded
        jobs_after = len(client.jobs())
    finally:
        server.stop()

    # New server generation: fresh job state, same ResultCache dir.
    state2 = root / "lat-state-2"
    state2.mkdir()
    server = Server(state2, cache)
    try:
        client = server.client()
        t0 = time.perf_counter()
        record = client.submit(EXAMPLE_51)
        final = client.wait(record["id"], timeout=120)
        warm_new_server = time.perf_counter() - t0
        assert final["result"] == serial_encoded
        assert final["cache_hit"] is True, "expected a ResultCache hit"
    finally:
        server.stop()

    speedup = cold / best_cached
    assert jobs_after == 1, f"dedup failed: {jobs_after} jobs for one spec"
    assert speedup >= 10, (
        f"cached request only {speedup:.1f}x faster than cold"
    )
    return {
        "case": "example-5.1-matmul-mu6",
        "cold_s": cold,
        "cached_s": best_cached,
        "cached_speedup_vs_cold": speedup,
        "warm_cache_new_server_s": warm_new_server,
    }


def _throughput_run(root: Path, name: str, clients: int,
                    extra_args: tuple = (),
                    specs: list | None = None) -> float:
    """Wall time for `clients` threads driving distinct specs to done."""
    state = root / name
    state.mkdir()
    server = Server(state, None, workers=4, extra_args=extra_args)
    try:
        if specs is None:
            specs = [
                {"task": "schedule", "algorithm": "matmul", "mu": [mu],
                 "space": [[1, 1, -1]]}
                for mu in range(3, 3 + clients)
            ]

        def one(spec):
            client = server.client()
            record = client.submit(spec)
            final = client.wait(record["id"], timeout=300)
            assert final["state"] == "done"
            return final

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(one, specs))
        return time.perf_counter() - t0
    finally:
        server.stop()


def bench_throughput(root: Path, clients: int = 8) -> dict:
    wall = _throughput_run(root, "thr-state", clients)
    return {
        "case": f"{clients}-clients-distinct-specs",
        "jobs": clients,
        "wall_s": wall,
        "jobs_per_s": clients / wall,
    }


def bench_hardening_overhead(root: Path, clients: int = 8) -> dict:
    """The containment layer on the hot path: the 8-client throughput
    shape scaled to 48 distinct jobs (8 sizes x 6 space vectors, so
    per-run wall is a couple of seconds and a 3% difference rises above
    subprocess scheduling noise), ``--no-hardening`` vs the armed
    defaults, interleaved best-of-4 each so a noisy neighbor cannot
    charge its wall time to one configuration."""
    spaces = [[1, 1, -1], [1, -1, 1], [-1, 1, 1],
              [1, -1, -1], [-1, 1, -1], [-1, -1, 1]]
    specs = [
        {"task": "schedule", "algorithm": "matmul", "mu": [mu],
         "space": [space]}
        for mu in range(3, 3 + clients) for space in spaces
    ]
    hardened_args = ("--max-queue", "64", "--job-deadline", "300",
                     "--breaker-threshold", "3")
    baseline_args = ("--no-hardening",)
    hardened, baseline = [], []
    for i in range(4):
        hardened.append(_throughput_run(
            root, f"ovh-hard-{i}", clients, hardened_args, specs=specs))
        baseline.append(_throughput_run(
            root, f"ovh-base-{i}", clients, baseline_args, specs=specs))
        print(f"  overhead rep {i}: armed {hardened[-1]:.2f}s "
              f"vs bare {baseline[-1]:.2f}s", file=sys.stderr)
    best_hardened, best_baseline = min(hardened), min(baseline)
    overhead_pct = (best_hardened - best_baseline) / best_baseline * 100.0
    assert overhead_pct < 3.0, (
        f"hardening costs {overhead_pct:.2f}% on the {clients}-client "
        f"throughput case (budget: 3%)"
    )
    return {
        "case": f"{clients}-clients-hardening-overhead",
        "jobs": len(specs),
        "baseline_s": best_baseline,
        "hardened_s": best_hardened,
        "overhead_pct": overhead_pct,
    }


def bench_restart_recovery(root: Path, serial_encoded: dict) -> dict:
    state = root / "rec-state"
    state.mkdir()

    server = Server(state, None, env={"REPRO_DSE_SLOW": "0.2"})
    try:
        client = server.client()
        record = client.submit(EXAMPLE_51)
        job_id = record["id"]
        journal = state / "journals" / f"{job_id}.ckpt"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal.exists() and len(journal.read_bytes().splitlines()) >= 2:
                break
            time.sleep(0.05)
        else:
            raise RuntimeError("journal never grew")
    finally:
        server.stop()  # graceful SIGTERM: job parks as interrupted

    t0 = time.perf_counter()
    server = Server(state, None)
    try:
        client = server.client()
        final = client.wait(job_id, timeout=120)
        recovery = time.perf_counter() - t0
        assert final["state"] == "done"
        assert final["result"] == serial_encoded, "resumed != uninterrupted"
        resumed = final["telemetry"]["shards_resumed"]
        assert resumed >= 1
    finally:
        server.stop()
    return {
        "case": "sigterm-restart-resume",
        "recovery_s": recovery,
        "shards_resumed": resumed,
    }


def main() -> None:
    serial = explore_schedule(matrix_multiplication(6), [[1, 1, -1]], jobs=1)
    serial_encoded = encode_result("schedule", serial)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        latency = bench_latency(root, serial_encoded)
        throughput = bench_throughput(root)
        recovery = bench_restart_recovery(root, serial_encoded)
        overhead = bench_hardening_overhead(root)

    payload = {
        "benchmark": "serve-job-server",
        "cpu_count": os.cpu_count(),
        "latency": latency,
        "throughput": throughput,
        "restart_recovery": recovery,
        "hardening_overhead": overhead,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"cold submit->done   : {latency['cold_s']*1000:8.1f} ms")
    print(f"cached resubmit     : {latency['cached_s']*1000:8.1f} ms "
          f"({latency['cached_speedup_vs_cold']:.0f}x faster)")
    print(f"warm-cache restart  : "
          f"{latency['warm_cache_new_server_s']*1000:8.1f} ms")
    print(f"throughput          : {throughput['jobs_per_s']:8.2f} jobs/s "
          f"({throughput['jobs']} clients)")
    print(f"restart recovery    : {recovery['recovery_s']*1000:8.1f} ms "
          f"({recovery['shards_resumed']} shard(s) replayed)")
    print(f"hardening overhead  : {overhead['overhead_pct']:+8.2f} % "
          f"(armed {overhead['hardened_s']:.2f}s vs "
          f"bare {overhead['baseline_s']:.2f}s)")
    print(f"wrote {OUTPUT.name}")


if __name__ == "__main__":
    main()
