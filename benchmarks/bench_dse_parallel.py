"""E-DSE — the exploration engine: serial vs sharded vs cached.

Standalone (no pytest needed): ``PYTHONPATH=src python
benchmarks/bench_dse_parallel.py`` times Procedure 5.1 and the joint
Problem 6.2 search through :mod:`repro.dse` in four configurations —
serial baseline, 2- and 4-worker fan-out, and cold/warm persistent
cache — asserts that every configuration returns a result equal to the
serial one, and writes the numbers to ``BENCH_dse.json``.

The shape that must hold on any machine: warm-cache replay is at least
2x faster than the cold serial search, and the batched candidate
engine is at least 3x faster than the scalar scan on the matmul mu=6
case.  Fan-out bars are gated on the *scheduler-visible* core count
(``os.sched_getaffinity``, not ``os.cpu_count``): jobs>cores
configurations still run — the bit-equality assertion is worth having
everywhere — but are flagged ``oversubscribed`` in the JSON and their
timing bars are skipped.  On a box with >= 4 usable cores the 4-way
joint fan-out must beat serial.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.optimize import procedure_5_1  # noqa: E402
from repro.core.space_optimize import solve_joint_optimal  # noqa: E402
from repro.dse import ResultCache, explore_joint, explore_schedule  # noqa: E402
from repro.model import matrix_multiplication, transitive_closure  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dse.json"

SCHEDULE_CASES = [
    ("example-5.1-matmul-mu6", lambda: matrix_multiplication(6), [[1, 1, -1]]),
    ("example-5.2-tc-mu5", lambda: transitive_closure(5), [[0, 0, 1]]),
]
JOINT_CASES = [
    ("joint-matmul-mu4", lambda: matrix_multiplication(4)),
]
JOB_COUNTS = [2, 4]
BATCH_SPEEDUP_BAR = 3.0
BATCH_SPEEDUP_CASE = "example-5.1-matmul-mu6"
# Combinatorial bar for the symmetry + LP-ring-bound pruning layer:
# with both prunes on, the matmul mu=6 search must compute at least 2x
# fewer exact conflict screens than the unpruned seed scan — while
# returning a bit-identical result.
PRUNING_REDUCTION_BAR = 2.0


def usable_cores() -> int:
    """Cores this process may actually schedule on.

    ``os.cpu_count()`` reports the machine; a container or cgroup caps
    the process lower, and a jobs=4 bar against a 1-core allowance is
    noise, not signal.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _timed(fn, repeats: int = 3):
    """Best-of-N wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_schedule_case(name, make_algo, space, cores) -> dict:
    algo = make_algo()
    record = {"case": name, "mu": list(algo.mu)}

    serial_t, serial = _timed(lambda: procedure_5_1(algo, space))
    record["serial_s"] = serial_t
    record["total_time"] = serial.total_time

    scalar_t, scalar = _timed(lambda: procedure_5_1(algo, space, batch=False))
    assert scalar == serial, f"{name}: batched search diverged from scalar"
    record["scalar_serial_s"] = scalar_t
    record["batch_speedup_vs_scalar"] = (
        scalar_t / serial_t if serial_t else float("inf")
    )

    for jobs in JOB_COUNTS:
        par_t, par = _timed(lambda: explore_schedule(algo, space, jobs=jobs))
        assert par == serial, f"{name}: jobs={jobs} diverged from serial"
        record[f"jobs{jobs}_s"] = par_t
        if jobs > cores:
            record[f"jobs{jobs}_oversubscribed"] = True

    with tempfile.TemporaryDirectory() as d:
        cache = ResultCache(d)
        cold_t, cold = _timed(
            lambda: explore_schedule(algo, space, jobs=1, cache=cache),
            repeats=1,
        )
        warm_t, warm = _timed(
            lambda: explore_schedule(algo, space, jobs=1, cache=cache)
        )
        assert cold == serial == warm, f"{name}: cached result diverged"
    record["cache_cold_s"] = cold_t
    record["cache_warm_s"] = warm_t
    record["warm_speedup_vs_serial"] = serial_t / warm_t if warm_t else float("inf")
    return record


def bench_joint_case(name, make_algo, cores) -> dict:
    algo = make_algo()
    record = {"case": name, "mu": list(algo.mu)}

    serial_t, serial = _timed(lambda: solve_joint_optimal(algo), repeats=1)
    record["serial_s"] = serial_t

    for jobs in JOB_COUNTS:
        par_t, par = _timed(
            lambda: explore_joint(algo, jobs=jobs), repeats=1
        )
        assert par == serial, f"{name}: jobs={jobs} diverged from serial"
        record[f"jobs{jobs}_s"] = par_t
        if jobs > cores:
            record[f"jobs{jobs}_oversubscribed"] = True

    with tempfile.TemporaryDirectory() as d:
        cache = ResultCache(d)
        cold_t, cold = _timed(
            lambda: explore_joint(algo, cache=cache), repeats=1
        )
        warm_t, warm = _timed(lambda: explore_joint(algo, cache=cache))
        assert cold == serial == warm, f"{name}: cached result diverged"
    record["cache_cold_s"] = cold_t
    record["cache_warm_s"] = warm_t
    record["warm_speedup_vs_serial"] = serial_t / warm_t if warm_t else float("inf")
    return record


def bench_pruning_reduction() -> dict:
    """Candidates-examined reduction from symmetry + ring-bound pruning.

    The work measure is ``stats.conflict_screens`` — exact conflict
    decisions actually computed, the funnel's expensive stage — because
    it is execution-strategy-independent and directly counts what the
    pruning layer exists to avoid.  The pruned search must stay
    bit-identical to the seed scan (result *and* deterministic
    counters) while clearing the ``PRUNING_REDUCTION_BAR``.
    """
    algo = matrix_multiplication(6)
    space = [[1, 1, -1]]

    seed_t, seed = _timed(
        lambda: procedure_5_1(algo, space, symmetry=False, ring_bound=False)
    )
    pruned_t, pruned = _timed(lambda: procedure_5_1(algo, space))
    assert pruned == seed, "pruning-reduction: pruned result diverged"
    assert pruned.stats.counter_dict() == seed.stats.counter_dict(), (
        "pruning-reduction: deterministic counters diverged"
    )
    assert pruned.stats.orbits_collapsed > 0, (
        "pruning-reduction: symmetry collapsing never fired"
    )
    reduction = seed.stats.conflict_screens / max(
        pruned.stats.conflict_screens, 1
    )
    return {
        "case": "pruning-reduction-matmul-mu6",
        "seed_s": seed_t,
        "pruned_s": pruned_t,
        "seed_conflict_screens": seed.stats.conflict_screens,
        "pruned_conflict_screens": pruned.stats.conflict_screens,
        "orbits_collapsed": pruned.stats.orbits_collapsed,
        "candidates_skipped": pruned.stats.candidates_skipped,
        "rings_bounded_out": pruned.stats.rings_bounded_out,
        "reduction": reduction,
        "bar": PRUNING_REDUCTION_BAR,
    }


def bench_trace_overhead() -> dict:
    """The observability tax, measured both ways.

    ``disabled``: the default path — the global tracer is off, spans
    only time themselves.  Its cost is bounded by the measured per-span
    price times the handful of spans a search opens; the bar is < 2%
    of the serial search.  ``enabled``: a full ``trace_session`` with
    JSONL export, for the record (not subject to the bar).
    """
    from repro.obs import get_tracer, trace_session

    algo = matrix_multiplication(6)
    space = [[1, 1, -1]]

    disabled_t, base = _timed(lambda: procedure_5_1(algo, space), repeats=5)

    reps = 100_000
    tracer = get_tracer()
    assert not tracer.enabled
    t0 = time.perf_counter()
    for _ in range(reps):
        with tracer.span("noop"):
            pass
    per_span = (time.perf_counter() - t0) / reps
    # Spans opened by one serial search: the root plus one per ring.
    spans_per_search = 1 + base.rings_expanded
    disabled_overhead = per_span * spans_per_search / disabled_t

    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "trace.jsonl"

        def traced():
            with trace_session(path):
                return procedure_5_1(algo, space)

        enabled_t, traced_result = _timed(traced, repeats=5)
    assert traced_result == base, "tracing changed the search result"

    return {
        "case": "trace-overhead-matmul-mu6",
        "disabled_s": disabled_t,
        "disabled_span_cost_s": per_span,
        "spans_per_search": spans_per_search,
        "disabled_overhead_ratio": disabled_overhead,
        "enabled_s": enabled_t,
        "enabled_overhead_ratio": enabled_t / disabled_t if disabled_t else 1.0,
    }


def bench_checkpoint_overhead() -> dict:
    """The crash-safety tax: journaling every completed shard.

    Same search, same ``jobs=1`` engine route, with and without a
    write-ahead journal attached.  Journal cost is per shipped byte
    (one checksummed, fsynced line per completed shard), so the ratio
    depends entirely on how much work each shard represents.  The
    measured case is the joint Problem 6.2 search — chunky shards,
    hundreds of milliseconds of exact-arithmetic work each — which is
    the shape of run checkpointing exists for; there the journal is a
    handful of lines against real work and the bar is < 3% overhead.
    (A tiny schedule search over a large candidate ring can spend
    microseconds per candidate, where any per-candidate serialization
    is proportionally visible — those runs finish in milliseconds and
    have nothing worth resuming.)  The journaled result must, as
    everywhere, equal the plain one.
    """
    algo = matrix_multiplication(4)

    base_t, base = _timed(lambda: explore_joint(algo, jobs=1), repeats=3)
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "bench.ckpt"
        # non-resume opens overwrite, so each repeat journals afresh
        ckpt_t, ckpt = _timed(
            lambda: explore_joint(algo, jobs=1, checkpoint=path),
            repeats=3,
        )
    assert ckpt == base, "checkpointing changed the search result"
    return {
        "case": "checkpoint-overhead-joint-matmul-mu4",
        "plain_s": base_t,
        "checkpointed_s": ckpt_t,
        "overhead_ratio": (ckpt_t / base_t - 1.0) if base_t else 0.0,
    }


def main() -> int:
    cores = usable_cores()
    records = [bench_schedule_case(*case, cores) for case in SCHEDULE_CASES]
    records += [bench_joint_case(*case, cores) for case in JOINT_CASES]
    overhead = bench_trace_overhead()
    ckpt_overhead = bench_checkpoint_overhead()
    pruning = bench_pruning_reduction()

    payload = {
        "benchmark": "dse-parallel-cache",
        "cpu_count": cores,
        "cpu_count_machine": os.cpu_count(),
        "records": records,
        "trace_overhead": overhead,
        "checkpoint_overhead": ckpt_overhead,
        "pruning_reduction": pruning,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    header = (
        f"{'case':28}  {'serial':>8}  {'jobs=2':>8}  {'jobs=4':>8}  "
        f"{'cold':>8}  {'warm':>8}  {'warm speedup':>12}"
    )
    print(f"usable cores: {cores} (machine reports {os.cpu_count()})\n")
    print(header)
    print("-" * len(header))
    ok = True
    for r in records:
        speedup = r["warm_speedup_vs_serial"]
        print(
            f"{r['case']:28}  {r['serial_s']:8.3f}  {r['jobs2_s']:8.3f}  "
            f"{r['jobs4_s']:8.3f}  {r['cache_cold_s']:8.3f}  "
            f"{r['cache_warm_s']:8.3f}  {speedup:11.1f}x"
        )
        if speedup < 2.0:
            ok = False
        batch_speedup = r.get("batch_speedup_vs_scalar")
        if batch_speedup is not None:
            print(
                f"{'':28}  batched engine {batch_speedup:.2f}x vs scalar "
                f"({r['scalar_serial_s']:.3f}s -> {r['serial_s']:.3f}s)"
            )
            if r["case"] == BATCH_SPEEDUP_CASE and batch_speedup < BATCH_SPEEDUP_BAR:
                print(
                    f"FAIL: {r['case']} batched engine under the "
                    f"{BATCH_SPEEDUP_BAR:.0f}x bar ({batch_speedup:.2f}x)",
                    file=sys.stderr,
                )
                ok = False
        for jobs in JOB_COUNTS:
            if not r.get(f"jobs{jobs}_oversubscribed"):
                continue
            print(
                f"{'':28}  jobs={jobs} oversubscribed "
                f"({cores} usable core(s)) — timing bar skipped"
            )
    joint = next(r for r in records if r["case"] == "joint-matmul-mu4")
    if joint.get("jobs4_oversubscribed"):
        print("\njobs=4 vs serial bar: skipped (fewer than 4 usable cores)")
    elif joint["jobs4_s"] > joint["serial_s"]:
        print(
            f"FAIL: joint-matmul-mu4 jobs=4 ({joint['jobs4_s']:.3f}s) slower "
            f"than serial ({joint['serial_s']:.3f}s) on {cores} cores",
            file=sys.stderr,
        )
        ok = False
    print(
        f"\ntrace overhead: disabled "
        f"{overhead['disabled_overhead_ratio'] * 100:.3f}% "
        f"({overhead['spans_per_search']} spans x "
        f"{overhead['disabled_span_cost_s'] * 1e6:.2f}us), "
        f"enabled {(overhead['enabled_overhead_ratio'] - 1) * 100:.1f}%"
    )
    if overhead["disabled_overhead_ratio"] > 0.02:
        print("FAIL: disabled tracing costs more than 2%", file=sys.stderr)
        ok = False
    print(
        f"checkpoint overhead: {ckpt_overhead['overhead_ratio'] * 100:.2f}% "
        f"({ckpt_overhead['plain_s']:.3f}s -> "
        f"{ckpt_overhead['checkpointed_s']:.3f}s)"
    )
    if ckpt_overhead["overhead_ratio"] > 0.03:
        print("FAIL: checkpoint journaling costs more than 3%", file=sys.stderr)
        ok = False
    print(
        f"pruning reduction: {pruning['reduction']:.2f}x fewer conflict "
        f"screens ({pruning['seed_conflict_screens']} -> "
        f"{pruning['pruned_conflict_screens']}; "
        f"{pruning['orbits_collapsed']} orbit member(s) rehydrated, "
        f"{pruning['rings_bounded_out']} ring(s) bounded out)"
    )
    if pruning["reduction"] < PRUNING_REDUCTION_BAR:
        print(
            f"FAIL: pruning reduction {pruning['reduction']:.2f}x under the "
            f"{PRUNING_REDUCTION_BAR:.0f}x bar",
            file=sys.stderr,
        )
        ok = False
    print(f"\nwrote {OUTPUT}")
    if not ok:
        print("FAIL: warm cache replay under the 2x speedup bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
