"""E8 — Section 1/5's motivating application: 5-D bit-level matmul on a 2-D array.

The paper's raison d'etre: automatically mapping 4/5-dimensional
bit-level algorithms onto 2-dimensional bit-level arrays (GAPP / DAP /
MPP class machines, simulated here).  Exercises the ``T in Z^{3x5}``
machinery end to end: Theorem 4.7 conflict checks inside Procedure 5.1,
Proposition 8.1's closed-form multiplier columns, and a full
cycle-accurate 2-D simulation of the winning mapping.
"""

import pytest

from conftest import print_table
from repro.core import (
    MappingMatrix,
    is_conflict_free_kernel_box,
    procedure_5_1,
    prop81_columns,
    theorem_4_7,
)
from repro.model import bit_level_matrix_multiplication
from repro.systolic import simulate_mapping

SPACE = [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]]
SWEEP = [(1, 1), (2, 1), (1, 2), (2, 2)]


@pytest.mark.parametrize("mu,word", SWEEP)
def test_bitlevel_mapping_search(benchmark, mu, word):
    algo = bit_level_matrix_multiplication(mu, word)
    result = benchmark(procedure_5_1, algo, SPACE)
    assert result.found
    assert is_conflict_free_kernel_box(result.mapping, algo.mu)


def test_regenerate_bitlevel_table(benchmark):
    def compute():
        rows = []
        for mu, word in SWEEP:
            algo = bit_level_matrix_multiplication(mu, word)
            res = procedure_5_1(algo, SPACE)
            mapping = res.mapping
            v47 = theorem_4_7(mapping, algo.mu)
            report = simulate_mapping(algo, mapping)
            rows.append(
                [
                    mu,
                    word,
                    len(algo.index_set),
                    list(res.schedule.pi),
                    res.total_time,
                    report.num_processors,
                    v47.holds,
                    report.ok,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Bit-level matmul (5-D) onto a 2-D array, T in Z^(3x5)",
        ["mu", "w", "|J|", "Pi*", "t*", "PEs", "Thm 4.7", "sim clean"],
        rows,
    )
    for row in rows:
        assert row[7] is True  # every simulation clean
        # Conflict-freedom certified (Thm 4.7 may be True or, in the
        # rare cancellation cases, the exact oracle carried the day).


def test_prop81_on_winner(benchmark):
    """Proposition 8.1 evaluated on the search winner for mu=w=1."""
    algo = bit_level_matrix_multiplication(1, 1)
    res = procedure_5_1(algo, SPACE)
    pi = res.schedule.pi

    def closed_form():
        try:
            return prop81_columns(SPACE, pi)
        except ValueError:
            return None

    prop = benchmark.pedantic(closed_form, rounds=1, iterations=1)
    if prop is not None:
        from repro.intlin import matvec

        t = MappingMatrix(space=tuple(map(tuple, SPACE)), schedule=pi)
        assert matvec(t.rows(), list(prop.u4)) == [0, 0, 0]
        assert matvec(t.rows(), list(prop.u5)) == [0, 0, 0]
        print(f"\nProp 8.1: u4={list(prop.u4)} u5={list(prop.u5)} "
              f"h={prop.h} g={prop.g}")


def test_word_level_vs_bit_level_cost(benchmark):
    """The motivation quantified: time of the 5-D bit-level mapping vs
    the ideal word-level 3-D mapping of the same matrix size."""
    from repro.core import solve_corank1_optimal
    from repro.model import matrix_multiplication

    def compute():
        mu = 2
        word = 2
        bit = procedure_5_1(
            bit_level_matrix_multiplication(mu, word), SPACE
        )
        wordlevel = solve_corank1_optimal(
            matrix_multiplication(mu), [[1, 1, -1]]
        )
        return bit.total_time, wordlevel.total_time

    bit_t, word_t = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(f"\nbit-level 2-D array t = {bit_t}; word-level linear array t = {word_t}")
    # Bit-level arrays trade per-cycle simplicity for more cycles.
    assert bit_t > word_t
