"""E6 — Figure 3: the execution of matmul on the linear array.

Runs the cycle-accurate simulation of the Figure-3 configuration
(``mu = 4``, ``T = [[1,1,-1],[1,4,1]]``) and asserts everything the
figure shows: each computation ``(j1,j2,j3)`` executes at processor
``j1+j2-j3`` and cycle ``j1+4 j2+j3``, no slot is double-booked, no
link carries two data in one cycle, the array finishes at exactly
``t = mu(mu+2)+1 = 25``, and the computed matrix equals ``A @ B``.
"""

import numpy as np

from conftest import print_table
from repro.core import MappingMatrix
from repro.model import matrix_multiplication
from repro.systolic import render_space_time, simulate_mapping, verify_matmul

MU = 4
T = MappingMatrix(space=((1, 1, -1),), schedule=(1, MU, 1))


def make_algo():
    rng = np.random.default_rng(2024)
    a = rng.integers(0, 10, (MU + 1, MU + 1))
    b = rng.integers(0, 10, (MU + 1, MU + 1))
    return matrix_multiplication(MU, a=a, b=b), a, b


def test_simulation_speed(benchmark):
    algo, _a, _b = make_algo()
    report = benchmark(simulate_mapping, algo, T)
    assert report.ok


def test_regenerate_figure_3(benchmark):
    algo, a, b = make_algo()
    report = benchmark.pedantic(simulate_mapping, args=(algo, T), rounds=1, iterations=1)

    rows = [
        ["makespan (cycles)", report.makespan, MU * (MU + 2) + 1],
        ["computations", report.num_computations, (MU + 1) ** 3],
        ["processors", report.num_processors, 3 * MU + 1],
        ["computational conflicts", len(report.conflicts), 0],
        ["link collisions", len(report.link_collisions), 0],
        ["latency violations", len(report.latency_violations), 0],
        ["peak A-link FIFO", report.max_buffer_occupancy[1], 3],
    ]
    print_table(
        "Figure 3 — simulated execution audit (mu = 4)",
        ["metric", "measured", "paper/derived"],
        rows,
    )
    for _name, measured, expected in rows:
        assert measured == expected

    ok, sim, ref = verify_matmul(report.values, a, b)
    assert ok
    print("\nFigure 3 — space-time table:")
    print(render_space_time(algo, T))


def test_placement_formula(benchmark):
    """Each cell of Figure 3: computation j at PE j1+j2-j3, cycle
    j1 + 4 j2 + j3."""
    algo, _a, _b = make_algo()

    def check_all():
        for j in algo.index_set:
            assert T.processor(j) == (j[0] + j[1] - j[2],)
            assert T.time(j) == j[0] + 4 * j[1] + j[2]
        return True

    assert benchmark.pedantic(check_all, rounds=1, iterations=1)


def test_functional_simulation_speed(benchmark):
    """Simulation including value computation (the full Figure 3 run)."""
    algo, a, b = make_algo()

    def run():
        report = simulate_mapping(algo, T)
        ok, *_ = verify_matmul(report.values, a, b)
        return ok

    assert benchmark(run)
