"""E10 — ablation: the conflict-freedom checkers against each other.

DESIGN.md calls out the checker hierarchy as the design choice worth
ablating: the paper-mode theorem checks (cheap, sufficient — exact for
co-rank 1, with the documented Theorem 4.8 gap), the exact kernel-box
oracle, the auto mode (theorem fast-path + exact fallback), and the
brute-force referee.  This harness times all four on a fixed random
population of mappings and reports agreement rates — regenerating, in
effect, the implicit "use the closed-form conditions, they are cheap
and almost always decisive" argument of Section 4.
"""

import random


from conftest import print_table
from repro.core import (
    MappingMatrix,
    check_conflict_free,
    is_conflict_free_bruteforce,
    is_conflict_free_kernel_box,
)
from repro.intlin import random_full_rank
from repro.model import ConstantBoundedIndexSet


def make_population(k, n, mu_val, count, seed=11):
    rng = random.Random(seed)
    mu = (mu_val,) * n
    pop = []
    while len(pop) < count:
        rows = random_full_rank(k, n, rng=rng, magnitude=4)
        pop.append(MappingMatrix.from_rows(rows))
    return pop, mu


POP2, MU2 = make_population(2, 4, 2, 60)       # co-rank 2
POP3, MU3 = make_population(2, 5, 2, 40)       # co-rank 3
J2 = ConstantBoundedIndexSet(MU2)


def test_paper_mode_speed(benchmark):
    def run():
        return [check_conflict_free(t, MU2, method="paper").holds for t in POP2]

    verdicts = benchmark(run)
    assert len(verdicts) == len(POP2)


def test_auto_mode_speed(benchmark):
    def run():
        return [check_conflict_free(t, MU2, method="auto").holds for t in POP2]

    verdicts = benchmark(run)
    assert len(verdicts) == len(POP2)


def test_exact_mode_speed(benchmark):
    def run():
        return [is_conflict_free_kernel_box(t, MU2) for t in POP2]

    verdicts = benchmark(run)
    assert len(verdicts) == len(POP2)


def test_bruteforce_speed(benchmark):
    def run():
        return [is_conflict_free_bruteforce(t, J2) for t in POP2]

    verdicts = benchmark(run)
    assert len(verdicts) == len(POP2)


def test_bruteforce_vectorized_speed(benchmark):
    """The NumPy single-matmul referee (guide-recommended vectorization)
    vs the scalar dictionary walk above."""
    from repro.core import is_conflict_free_bruteforce_vectorized

    def run():
        return [is_conflict_free_bruteforce_vectorized(t, J2) for t in POP2]

    verdicts = benchmark(run)
    scalar = [is_conflict_free_bruteforce(t, J2) for t in POP2]
    assert verdicts == scalar


def test_margin_distribution(benchmark):
    """Conflict-margin statistics over the random population: free
    mappings sit strictly above margin 1, conflicted ones at or below
    — the metric separates the classes perfectly."""
    from fractions import Fraction

    from repro.core import conflict_margin

    def compute():
        margins = []
        for t in POP2:
            m = conflict_margin(t, MU2)
            free = is_conflict_free_kernel_box(t, MU2)
            margins.append((m, free))
        return margins

    margins = benchmark.pedantic(compute, rounds=1, iterations=1)
    for m, free in margins:
        assert (m > Fraction(1)) == free
    free_margins = [m for m, f in margins if f]
    if free_margins:
        print(f"\nmargin range among conflict-free mappings: "
              f"{min(free_margins)} .. {max(free_margins)}")


def test_agreement_table(benchmark):
    """Agreement of every checker against the exact oracle, both
    co-ranks.  Shape: auto == exact always; paper-mode sufficiency
    never produces a false positive at co-rank 2 (Theorem 4.7) but can
    at co-rank 3 (the Theorem 4.8 gap, finding F2)."""

    def compute():
        rows = []
        for label, pop, mu in (("co-rank 2", POP2, MU2), ("co-rank 3", POP3, MU3)):
            exact = [is_conflict_free_kernel_box(t, mu) for t in pop]
            paper = [check_conflict_free(t, mu, method="paper").holds for t in pop]
            auto = [check_conflict_free(t, mu, method="auto").holds for t in pop]
            agree_paper = sum(p == e for p, e in zip(paper, exact))
            agree_auto = sum(a == e for a, e in zip(auto, exact))
            false_pos = sum(p and not e for p, e in zip(paper, exact))
            rows.append(
                [
                    label,
                    len(pop),
                    sum(exact),
                    f"{agree_paper}/{len(pop)}",
                    f"{agree_auto}/{len(pop)}",
                    false_pos,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Checker ablation — agreement with the exact oracle",
        [
            "population",
            "mappings",
            "conflict-free",
            "paper agrees",
            "auto agrees",
            "paper false-positives",
        ],
        rows,
    )
    # auto is exact everywhere.
    for row in rows:
        assert row[4] == f"{row[1]}/{row[1]}"
    # co-rank 2 paper mode has no false positives (Thm 4.7 sufficiency).
    assert rows[0][5] == 0
